//! Key-ordered deferred-action schedulers.
//!
//! Two structures with the same contract — payloads drain in nondecreasing
//! key order, FIFO within a key — at different cost profiles:
//!
//! * [`EventWheel`] — an exact binary min-heap keyed by [`Cycle`], used by
//!   the timing models (`O(log n)` per operation, unbounded horizon).
//! * [`HierarchicalWheel`] — a hierarchical timing wheel keyed by plain
//!   `u64` ticks, used by the throughput backend (`gp-turbo`) as a bucketed
//!   priority queue over quantized delta magnitudes (`O(1)` insert, batch
//!   drains, bounded horizon with an explicit overflow handoff).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A min-heap of `(due-cycle, payload)` pairs: the simulation analog of a
/// hardware timer wheel or an SST event queue.
///
/// Payloads scheduled for the same cycle pop in insertion order (a stable
/// sequence number breaks ties), which keeps whole-system simulations
/// deterministic.
///
/// # Examples
///
/// ```
/// use gp_sim::{Cycle, EventWheel};
///
/// let mut w = EventWheel::new();
/// w.schedule(Cycle::new(5), "later");
/// w.schedule(Cycle::new(2), "sooner");
/// assert_eq!(w.pop_due(Cycle::new(2)), Some("sooner"));
/// assert_eq!(w.pop_due(Cycle::new(2)), None);
/// assert_eq!(w.pop_due(Cycle::new(9)), Some("later"));
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, OrdShim<T>)>>,
    seq: u64,
}

/// Wrapper giving every payload a vacuous total order so it can live in the
/// heap; ordering is fully decided by `(Cycle, seq)` before the shim is ever
/// compared.
#[derive(Debug, Clone)]
struct OrdShim<T>(T);

impl<T> PartialEq for OrdShim<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdShim<T> {}
impl<T> PartialOrd for OrdShim<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdShim<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        EventWheel {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to become due at cycle `when`.
    pub fn schedule(&mut self, when: Cycle, payload: T) {
        self.heap.push(Reverse((when, self.seq, OrdShim(payload))));
        self.seq += 1;
    }

    /// Pops the earliest payload that is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse((due, _, _))) if *due <= now => {
                self.heap.pop().map(|Reverse((_, _, OrdShim(v)))| v)
            }
            _ => None,
        }
    }

    /// The cycle at which the next payload becomes due, or [`Cycle::NEVER`].
    ///
    /// Lets a simulation loop fast-forward over idle gaps.
    pub fn next_due(&self) -> Cycle {
        self.heap
            .peek()
            .map(|Reverse((due, _, _))| *due)
            .unwrap_or(Cycle::NEVER)
    }

    /// Number of scheduled payloads.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no payloads are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A payload rejected by [`HierarchicalWheel::insert`] because its key lies
/// at or beyond the wheel's horizon.
///
/// The wheel hands the payload back instead of silently dropping or
/// mis-filing it; callers decide the overflow policy (park it in a side
/// list, clamp it to [`HierarchicalWheel::max_key`], grow the wheel, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WheelOverflow<T> {
    /// The key the payload was scheduled for.
    pub key: u64,
    /// The rejected payload.
    pub payload: T,
}

/// A hierarchical timing wheel: `levels` wheels of `slots` buckets each,
/// where a level-`k` bucket spans `slots^k` consecutive keys.
///
/// Keys near [`HierarchicalWheel::now`] resolve to the fine level-0 wheel
/// (one key per bucket); farther keys land in coarser levels and *cascade*
/// down as `now` reaches their bucket's window. Inserting and draining are
/// therefore `O(1)` amortized per payload regardless of how many payloads
/// are resident — the property the throughput backend needs when it
/// schedules millions of events by quantized delta magnitude.
///
/// Semantics:
///
/// * Payloads drain in nondecreasing key order, FIFO within a key.
/// * A key in the past (`key < now`) is **clamped to `now`** — "overdue"
///   means "drain as soon as possible". [`HierarchicalWheel::insert`]
///   returns the effective key.
/// * A key at or beyond `now + horizon` does not fit any bucket; insert
///   hands the payload back as a [`WheelOverflow`] ("too far in the
///   future").
///
/// # Examples
///
/// ```
/// use gp_sim::HierarchicalWheel;
///
/// let mut w: HierarchicalWheel<&str> = HierarchicalWheel::new(4, 2); // horizon 16
/// w.insert(9, "far").unwrap();
/// w.insert(1, "near").unwrap();
/// w.insert(1, "near-too").unwrap();
/// assert!(w.insert(16, "beyond").is_err());
/// assert_eq!(w.drain_next(), Some((1, vec!["near", "near-too"])));
/// assert_eq!(w.drain_next(), Some((9, vec!["far"])));
/// assert_eq!(w.drain_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalWheel<T> {
    /// `levels[k][slot]` holds `(key, payload)` pairs; level-`k` buckets
    /// span `slots^k` keys.
    levels: Vec<Vec<Vec<(u64, T)>>>,
    slots: u64,
    /// `spans[k] = slots^k`, the key span of one level-`k` bucket.
    spans: Vec<u64>,
    horizon: u64,
    now: u64,
    len: usize,
}

impl<T> HierarchicalWheel<T> {
    /// Creates a wheel of `levels` levels with `slots` buckets each,
    /// covering keys `[now, now + slots^levels)`.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`, `levels == 0`, or `slots^levels` overflows
    /// `u64`.
    pub fn new(slots: u64, levels: usize) -> Self {
        assert!(slots >= 2, "a wheel needs at least 2 slots per level");
        assert!(levels >= 1, "a wheel needs at least 1 level");
        let mut spans = Vec::with_capacity(levels);
        let mut span = 1u64;
        for _ in 0..levels {
            spans.push(span);
            span = span
                .checked_mul(slots)
                .expect("wheel horizon overflows u64");
        }
        HierarchicalWheel {
            levels: (0..levels)
                .map(|_| (0..slots).map(|_| Vec::new()).collect())
                .collect(),
            slots,
            spans,
            horizon: span,
            now: 0,
            len: 0,
        }
    }

    /// The next key the wheel will drain (keys below this clamp up to it).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of keys the wheel spans: `slots^levels`.
    #[inline]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The largest key currently insertable: `now + horizon - 1`.
    #[inline]
    pub fn max_key(&self) -> u64 {
        self.now + self.horizon - 1
    }

    /// Number of resident payloads.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no payloads are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `key`, clamping past keys to
    /// [`HierarchicalWheel::now`]. Returns the effective key, or the payload
    /// back as a [`WheelOverflow`] when `key >= now + horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`WheelOverflow`] for keys at or beyond the horizon; the
    /// wheel is unchanged.
    pub fn insert(&mut self, key: u64, payload: T) -> Result<u64, WheelOverflow<T>> {
        let key = key.max(self.now);
        let delta = key - self.now;
        if delta >= self.horizon {
            return Err(WheelOverflow { key, payload });
        }
        for (k, &span) in self.spans.iter().enumerate() {
            if delta < span * self.slots {
                let slot = ((key / span) % self.slots) as usize;
                self.levels[k][slot].push((key, payload));
                self.len += 1;
                return Ok(key);
            }
        }
        unreachable!("delta < horizon always fits the last level");
    }

    /// Drains the next non-empty bucket: all payloads with the smallest
    /// resident key, in insertion order. Advances `now` to that key.
    pub fn drain_next(&mut self) -> Option<(u64, Vec<T>)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.now % self.slots) as usize;
            if !self.levels[0][slot].is_empty() {
                let bucket = std::mem::take(&mut self.levels[0][slot]);
                self.len -= bucket.len();
                let key = self.now;
                debug_assert!(bucket.iter().all(|(k, _)| *k == key));
                return Some((key, bucket.into_iter().map(|(_, p)| p).collect()));
            }
            self.advance_one();
        }
    }

    /// Pops the single next payload in key order (FIFO within a key).
    ///
    /// Convenience for tests and low-rate callers; batch consumers should
    /// prefer [`HierarchicalWheel::drain_next`].
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.now % self.slots) as usize;
            if !self.levels[0][slot].is_empty() {
                let (key, payload) = self.levels[0][slot].remove(0);
                self.len -= 1;
                return Some((key, payload));
            }
            self.advance_one();
        }
    }

    /// Advances `now` to `key` without draining anything, cascading coarser
    /// buckets down as their windows open.
    ///
    /// This exists for shard-synchronized draining (the sharded turbo
    /// engine): every shard's wheel is advanced to the global round key so
    /// that clamping and the insertable window `[now, max_key()]` are
    /// identical on every shard, whichever shard the round's bucket lives
    /// on. Keys at or before `now` are a no-op.
    ///
    /// Caller contract: no resident payload may have a key below `key`
    /// (such payloads would be skipped over and only surface later, clamped
    /// — the same "overdue" semantics as [`HierarchicalWheel::insert`], but
    /// almost certainly not what a key-ordered consumer wants).
    pub fn advance_to(&mut self, key: u64) {
        while self.now < key {
            self.advance_one();
        }
    }

    /// Steps `now` forward one key, cascading coarser buckets whose window
    /// opens at the new position down into finer levels.
    fn advance_one(&mut self) {
        self.now += 1;
        // Highest level first: its payloads may re-file into the very
        // level-1 bucket that cascades right after it at the same boundary.
        for k in (1..self.spans.len()).rev() {
            let span = self.spans[k];
            if self.now.is_multiple_of(span) {
                let slot = ((self.now / span) % self.slots) as usize;
                let bucket = std::mem::take(&mut self.levels[k][slot]);
                self.len -= bucket.len();
                for (key, payload) in bucket {
                    debug_assert!(key >= self.now && key - self.now < span);
                    self.insert(key, payload)
                        .unwrap_or_else(|_| unreachable!("cascade stays within the horizon"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycle::new(30), 3);
        w.schedule(Cycle::new(10), 1);
        w.schedule(Cycle::new(20), 2);
        assert_eq!(w.next_due(), Cycle::new(10));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(1));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(2));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(3));
        assert_eq!(w.next_due(), Cycle::NEVER);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut w = EventWheel::new();
        for i in 0..10 {
            w.schedule(Cycle::new(5), i);
        }
        for i in 0..10 {
            assert_eq!(w.pop_due(Cycle::new(5)), Some(i));
        }
    }

    #[test]
    fn not_due_stays_scheduled() {
        let mut w = EventWheel::new();
        w.schedule(Cycle::new(7), ());
        assert_eq!(w.pop_due(Cycle::new(6)), None);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn hierarchical_drains_in_key_order_across_levels() {
        let mut w: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 3); // horizon 64
        for (key, v) in [(40u64, 0u32), (3, 1), (17, 2), (0, 3), (63, 4), (17, 5)] {
            assert_eq!(w.insert(key, v), Ok(key));
        }
        assert_eq!(w.len(), 6);
        let mut drained = Vec::new();
        while let Some((key, batch)) = w.drain_next() {
            drained.push((key, batch));
        }
        assert_eq!(
            drained,
            vec![
                (0, vec![3]),
                (3, vec![1]),
                (17, vec![2, 5]),
                (40, vec![0]),
                (63, vec![4]),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn hierarchical_clamps_past_keys_to_now() {
        let mut w: HierarchicalWheel<&str> = HierarchicalWheel::new(4, 2);
        w.insert(5, "first").unwrap();
        assert_eq!(w.drain_next(), Some((5, vec!["first"])));
        assert_eq!(w.now(), 5);
        // A key in the past becomes due immediately at `now`.
        assert_eq!(w.insert(2, "late"), Ok(5));
        assert_eq!(w.drain_next(), Some((5, vec!["late"])));
    }

    #[test]
    fn hierarchical_hands_back_overflow() {
        let mut w: HierarchicalWheel<u8> = HierarchicalWheel::new(4, 2); // horizon 16
        assert_eq!(w.max_key(), 15);
        let err = w.insert(16, 9).unwrap_err();
        assert_eq!(
            err,
            WheelOverflow {
                key: 16,
                payload: 9
            }
        );
        assert!(w.is_empty());
        // The handed-back payload can be clamped to the horizon by the caller.
        assert_eq!(w.insert(w.max_key(), err.payload), Ok(15));
        assert_eq!(w.pop(), Some((15, 9)));
    }

    #[test]
    fn hierarchical_advance_to_matches_drain_position() {
        // Advancing an empty wheel to key K and then inserting at K must
        // behave exactly like draining a sibling wheel up to K: same now,
        // same insertable window, same drain order afterwards.
        let mut advanced: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 3); // horizon 64
        let mut drained: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 3);
        drained.insert(37, 0).unwrap();
        assert_eq!(drained.drain_next(), Some((37, vec![0])));
        advanced.advance_to(37);
        assert_eq!(advanced.now(), drained.now());
        assert_eq!(advanced.max_key(), drained.max_key());
        for w in [&mut advanced, &mut drained] {
            assert_eq!(w.insert(37, 1), Ok(37));
            assert_eq!(w.insert(63, 2), Ok(63));
            assert!(w.insert(37 + 64, 3).is_err());
        }
        assert_eq!(advanced.drain_next(), drained.drain_next());
        assert_eq!(advanced.drain_next(), drained.drain_next());
        assert_eq!(advanced.drain_next(), None);
    }

    #[test]
    fn hierarchical_advance_to_cascades_future_payloads() {
        // Payloads at or beyond the target key must survive the advance and
        // still drain at their own keys (cascading from coarse levels).
        let mut w: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 3); // horizon 64
        w.insert(20, 1).unwrap();
        w.insert(45, 2).unwrap();
        w.advance_to(20);
        assert_eq!(w.now(), 20);
        assert_eq!(w.len(), 2);
        assert_eq!(w.drain_next(), Some((20, vec![1])));
        w.advance_to(45);
        assert_eq!(w.drain_next(), Some((45, vec![2])));
        // Advancing backwards (or to the current position) is a no-op.
        w.advance_to(3);
        assert_eq!(w.now(), 45);
    }

    #[test]
    fn hierarchical_pop_is_fifo_within_a_key() {
        let mut w: HierarchicalWheel<u32> = HierarchicalWheel::new(8, 1);
        for i in 0..5 {
            w.insert(3, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(w.pop(), Some((3, i)));
        }
        assert_eq!(w.pop(), None);
    }
}
