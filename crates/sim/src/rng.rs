//! Deterministic pseudo-random numbers for generators, workloads and tests.
//!
//! The workspace must build and test hermetically offline, so instead of the
//! `rand` crate this module provides a small, self-contained xoshiro256++
//! generator (Blackman & Vigna) seeded through SplitMix64. The API mirrors
//! the subset of `rand` the workspace uses — [`StdRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] — so call sites read identically.
//!
//! All streams are fully determined by their seed; two generators seeded the
//! same produce bit-identical sequences on every platform.
//!
//! ```
//! use gp_sim::rng::{Rng, StdRng};
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!((0..10).contains(&a.gen_range(0..10usize)));
//! ```

use std::ops::Range;

/// Core trait: a source of uniform `u64`s plus derived samplers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform in-place Fisher–Yates shuffle of `slice`.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniform random permutation of `0..n`, as the array `p` with
    /// `p[i]` = new position of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (the workspace's vertex-id width).
    fn permutation(&mut self, n: usize) -> Vec<u32>
    where
        Self: Sized,
    {
        assert!(n <= u32::MAX as usize, "permutation domain too large");
        let mut p: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut p);
        p
    }
}

/// A half-open range a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift mapping of 64 uniform bits onto the span
                // (Lemire); bias is < 2^-64 per draw, irrelevant here, and
                // the result is identical on every platform.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty sample range");
        self.start + rng.next_f32() * (self.end - self.start)
    }
}

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!((3..17).contains(&r.gen_range(3..17usize)));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = r.gen_range(0.5f32..0.75);
            assert!((0.5..0.75).contains(&g));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        let mut x: Vec<u32> = (0..50).collect();
        let mut y = x.clone();
        a.shuffle(&mut x);
        b.shuffle(&mut y);
        assert_eq!(x, y);
        let mut sorted = x.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // 50 elements virtually never shuffle to the identity.
        assert_ne!(x, sorted);
    }

    #[test]
    fn permutation_is_bijective() {
        let mut r = StdRng::seed_from_u64(21);
        let p = r.permutation(33);
        let mut seen = [false; 33];
        for &v in &p {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(r.permutation(0).is_empty());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        // Each bucket expects 1000; allow generous slack.
        assert!(
            counts.iter().all(|&c| (700..1300).contains(&c)),
            "{counts:?}"
        );
    }
}
