//! The simulation clock domain.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute timestamp of the simulated clock, measured in cycles.
///
/// `Cycle` is a newtype over `u64` so that cycle counts cannot be confused
/// with other integer quantities (vertex ids, byte counts, ...). Arithmetic
/// with plain `u64` durations is supported directly because durations are
/// pervasive in timing models:
///
/// ```
/// use gp_sim::Cycle;
/// let start = Cycle::new(10);
/// let done = start + 4;
/// assert_eq!(done.get(), 14);
/// assert_eq!(done - start, 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of time.
    pub const ZERO: Cycle = Cycle(0);

    /// A timestamp later than any reachable simulation time. Used as the
    /// "never" sentinel by schedulers.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp at cycle `n`.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycle(n)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the next cycle (`self + 1`).
    #[inline]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Saturating conversion of this cycle count to seconds at `freq_hz`.
    ///
    /// ```
    /// use gp_sim::Cycle;
    /// let t = Cycle::new(2_000_000_000);
    /// assert!((t.as_seconds(1.0e9) - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn as_seconds(self, freq_hz: f64) -> f64 {
        self.0 as f64 / freq_hz
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Duration between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(n: u64) -> Self {
        Cycle(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Cycle::new(5);
        let b = a + 3;
        assert!(b > a);
        assert_eq!(b - a, 3);
        assert_eq!(a.next().get(), 6);
        assert_eq!(Cycle::ZERO.get(), 0);
        assert!(Cycle::NEVER > Cycle::new(u64::MAX - 1));
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 10;
        assert_eq!(t, Cycle::new(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "cycle 3");
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycle::new(1_000).as_seconds(1.0e9) - 1.0e-6).abs() < 1e-18);
    }
}
