//! Fixed-latency pipeline model.

use std::collections::VecDeque;

use crate::Cycle;

/// A fixed-latency pipeline with an initiation interval of one.
///
/// Models units such as the paper's 4-stage floating-point coalescer
/// (§IV-D): one new operation may enter per cycle, each operation completes
/// `depth` cycles after it was issued, and results retire in issue order.
///
/// The pipeline never back-pressures on its own — it can hold at most
/// `depth` operations because the issue rate is bounded by the caller
/// invoking [`Pipeline::issue`] at most once per cycle (enforced with a
/// debug assertion).
///
/// # Examples
///
/// ```
/// use gp_sim::{Cycle, Pipeline};
///
/// let mut p: Pipeline<&str> = Pipeline::new(4);
/// p.issue(Cycle::ZERO, "op");
/// assert!(p.retire(Cycle::new(3)).is_none());
/// assert_eq!(p.retire(Cycle::new(4)), Some("op"));
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    depth: u64,
    in_flight: VecDeque<(Cycle, T)>,
    last_issue: Cycle,
    issued_any: bool,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline of `depth` stages.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero; use a direct hand-off for combinational
    /// logic instead.
    pub fn new(depth: u64) -> Self {
        assert!(depth > 0, "pipeline depth must be nonzero");
        Pipeline {
            depth,
            in_flight: VecDeque::new(),
            last_issue: Cycle::ZERO,
            issued_any: false,
        }
    }

    /// Issues an operation at cycle `now`; it will retire at `now + depth`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if two operations are issued in the same cycle
    /// (initiation interval violation).
    pub fn issue(&mut self, now: Cycle, value: T) {
        debug_assert!(
            !self.issued_any || now > self.last_issue,
            "pipeline initiation interval violated at {now}"
        );
        self.last_issue = now;
        self.issued_any = true;
        self.in_flight.push_back((now + self.depth, value));
    }

    /// Whether an issue is legal at cycle `now` (at most one per cycle).
    pub fn can_issue(&self, now: Cycle) -> bool {
        !self.issued_any || now > self.last_issue
    }

    /// Retires the oldest operation if it has completed by cycle `now`.
    pub fn retire(&mut self, now: Cycle) -> Option<T> {
        match self.in_flight.front() {
            Some((done, _)) if *done <= now => self.in_flight.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inspects in-flight operations, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.in_flight.iter().map(|(_, v)| v)
    }

    /// Number of operations currently in flight.
    #[inline]
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the pipeline is empty (fully drained).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The configured depth in stages.
    #[inline]
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_retire_in_order_after_depth() {
        let mut p = Pipeline::new(3);
        p.issue(Cycle::new(0), 'a');
        p.issue(Cycle::new(1), 'b');
        assert_eq!(p.len(), 2);
        assert_eq!(p.retire(Cycle::new(2)), None);
        assert_eq!(p.retire(Cycle::new(3)), Some('a'));
        assert_eq!(p.retire(Cycle::new(3)), None); // 'b' finishes at 4
        assert_eq!(p.retire(Cycle::new(4)), Some('b'));
        assert!(p.is_empty());
    }

    #[test]
    fn can_issue_gates_same_cycle() {
        let mut p = Pipeline::new(1);
        assert!(p.can_issue(Cycle::ZERO));
        p.issue(Cycle::ZERO, ());
        assert!(!p.can_issue(Cycle::ZERO));
        assert!(p.can_issue(Cycle::new(1)));
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    #[cfg(debug_assertions)]
    fn double_issue_panics_in_debug() {
        let mut p = Pipeline::new(2);
        p.issue(Cycle::ZERO, 1);
        p.issue(Cycle::ZERO, 2);
    }

    #[test]
    fn iter_sees_in_flight() {
        let mut p = Pipeline::new(8);
        p.issue(Cycle::new(0), 10);
        p.issue(Cycle::new(1), 20);
        let v: Vec<_> = p.iter().copied().collect();
        assert_eq!(v, vec![10, 20]);
    }
}
