//! Statistics primitives backing the evaluation figures.
//!
//! Every figure in the paper's evaluation section is an aggregation over
//! simulation counters; this module provides the small set of collectors the
//! rest of the workspace shares: saturating [`Counter`]s, running
//! [`Average`]s, bucketed [`Histogram`]s, and a per-unit
//! [`StateTimeline`] that records how many cycles a hardware unit spent in
//! each coarse state (the basis of the paper's Fig. 14 breakdown).
//!
//! For shard-parallel simulation the module also provides a thread-safe
//! [`StatsRegistry`]: each worker accumulates into its own cheap
//! [`ShardStats`] (no synchronization on the hot path) and the registry
//! merges the shards at cycle-epoch barriers, so totals are deterministic
//! regardless of how shards were scheduled onto threads.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// A monotonically increasing event counter.
///
/// ```
/// use gp_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` occurrences.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A running average of `f64` samples (mean, count, min, max).
#[derive(Debug, Default, Clone, Copy)]
pub struct Average {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Average {
    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.sum += sample;
        self.count += 1;
    }

    /// Mean of all samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Folds another average's samples into this one, as if every sample
    /// had been recorded here directly.
    pub fn merge(&mut self, other: &Average) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A histogram over fixed-width buckets with an overflow bucket.
///
/// Used for the Fig. 8 lookahead distribution, where the paper buckets
/// lookahead degrees as `0, <100, <200, <300, <400, >400`.
///
/// ```
/// use gp_sim::stats::Histogram;
/// let mut h = Histogram::new(100, 4); // buckets [0,100), [100,200), ... + overflow
/// h.record(0);
/// h.record(150);
/// h.record(1_000);
/// assert_eq!(h.bucket_counts(), &[1, 1, 0, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` fixed-width buckets of width
    /// `bucket_width` plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        assert!(buckets > 0, "bucket count must be nonzero");
        Histogram {
            bucket_width,
            counts: vec![0; buckets + 1],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += 1;
        self.total += 1;
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = (value / self.bucket_width) as usize;
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += n;
        self.total += n;
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of the fixed buckets.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Merges another histogram with identical shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Accumulates, per named state, how many cycles a unit spent in it.
///
/// The generic parameter is typically a small `enum` implementing `Into<usize>`
/// indirectly via [`StateTimeline::add`]'s explicit index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTimeline {
    names: Vec<&'static str>,
    cycles: Vec<u64>,
}

impl StateTimeline {
    /// Creates a timeline over the given state names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn new(names: &[&'static str]) -> Self {
        assert!(!names.is_empty(), "state timeline needs at least one state");
        StateTimeline {
            names: names.to_vec(),
            cycles: vec![0; names.len()],
        }
    }

    /// Charges `n` cycles to state `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        self.cycles[idx] += n;
    }

    /// Total cycles accounted across all states.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(name, cycles, fraction)` rows; fractions sum to 1 when non-empty.
    pub fn fractions(&self) -> Vec<(&'static str, u64, f64)> {
        let total = self.total().max(1) as f64;
        self.names
            .iter()
            .zip(&self.cycles)
            .map(|(n, c)| (*n, *c, *c as f64 / total))
            .collect()
    }

    /// Merges another timeline with the same states into this one.
    ///
    /// # Panics
    ///
    /// Panics if the state names differ.
    pub fn merge(&mut self, other: &StateTimeline) {
        assert_eq!(self.names, other.names, "state name mismatch");
        for (a, b) in self.cycles.iter_mut().zip(&other.cycles) {
            *a += b;
        }
    }
}

/// A worker-local bundle of named counters.
///
/// Accumulation is plain (unsynchronized) integer arithmetic; the shard is
/// handed to [`StatsRegistry::absorb`] at an epoch barrier. Counter names
/// are `&'static str` and totals are keyed in a `BTreeMap`, so snapshots
/// iterate in a deterministic order.
#[derive(Debug, Default, Clone)]
pub struct ShardStats {
    counts: BTreeMap<&'static str, u64>,
}

impl ShardStats {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current local value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Drains this shard into an empty one, returning the old contents.
    pub fn take(&mut self) -> ShardStats {
        std::mem::take(self)
    }
}

/// A thread-safe registry of named counters for shard-parallel runs.
///
/// Workers never touch the registry on the hot path; they accumulate into a
/// [`ShardStats`] and the epoch barrier calls [`StatsRegistry::absorb`].
/// Because addition is commutative over `u64`, the merged totals are
/// identical for any worker count or absorption order.
///
/// ```
/// use gp_sim::stats::{ShardStats, StatsRegistry};
/// let registry = StatsRegistry::new();
/// let mut a = ShardStats::new();
/// a.add("events", 3);
/// let mut b = ShardStats::new();
/// b.add("events", 4);
/// registry.absorb(a);
/// registry.absorb(b);
/// assert_eq!(registry.get("events"), 7);
/// ```
#[derive(Debug, Default)]
pub struct StatsRegistry {
    totals: Mutex<BTreeMap<&'static str, u64>>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a worker shard into the global totals.
    pub fn absorb(&self, shard: ShardStats) {
        let mut totals = self.totals.lock().expect("stats registry poisoned");
        for (name, n) in shard.counts {
            *totals.entry(name).or_insert(0) += n;
        }
    }

    /// Global value of `name` (0 if never reported).
    pub fn get(&self, name: &str) -> u64 {
        self.totals
            .lock()
            .expect("stats registry poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All `(name, total)` pairs in lexicographic name order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.totals
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn average_tracks_extremes() {
        let mut a = Average::default();
        assert_eq!(a.mean(), 0.0);
        a.record(2.0);
        a.record(4.0);
        a.record(-1.0);
        assert!((a.mean() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(29);
        h.record(30); // overflow
        h.record_n(35, 2);
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 3]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(10, 2);
        let mut b = Histogram::new(10, 2);
        a.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[1, 1, 0]);
        assert_eq!(a.total(), 2);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn histogram_merge_shape_checked() {
        let mut a = Histogram::new(10, 2);
        let b = Histogram::new(20, 2);
        a.merge(&b);
    }

    #[test]
    fn state_timeline_fractions_sum_to_one() {
        let mut t = StateTimeline::new(&["busy", "stall", "idle"]);
        t.add(0, 50);
        t.add(1, 25);
        t.add(2, 25);
        let rows = t.fractions();
        let total: f64 = rows.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(rows[0], ("busy", 50, 0.5));
    }

    #[test]
    fn state_timeline_merge() {
        let mut a = StateTimeline::new(&["x", "y"]);
        let mut b = StateTimeline::new(&["x", "y"]);
        a.add(0, 1);
        b.add(1, 3);
        a.merge(&b);
        assert_eq!(a.total(), 4);
    }
}
