//! Bounded, latency-aware FIFOs.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::Cycle;

/// Error returned by [`Fifo::push`] when the queue is at capacity.
///
/// The rejected element is handed back so the producer can retry on a later
/// cycle (modeling backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError<T>(pub T);

impl<T> fmt::Display for FifoFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> Error for FifoFullError<T> {}

/// A bounded FIFO whose entries become visible `latency` cycles after they
/// were pushed.
///
/// This models the ubiquitous hardware idiom of a buffered link: a producer
/// pushes at cycle *t*, the consumer can pop at cycle *t + latency* at the
/// earliest. Capacity counts all in-flight entries, visible or not, so a full
/// FIFO exerts backpressure on the producer exactly like a physical buffer.
///
/// # Examples
///
/// ```
/// use gp_sim::{Cycle, Fifo};
///
/// let mut f = Fifo::new(2, 1);
/// f.push(Cycle::ZERO, 'a').unwrap();
/// f.push(Cycle::ZERO, 'b').unwrap();
/// assert!(f.push(Cycle::ZERO, 'c').is_err()); // backpressure
/// assert_eq!(f.pop(Cycle::new(1)), Some('a'));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    entries: VecDeque<(Cycle, T)>,
    capacity: usize,
    latency: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with room for `capacity` in-flight entries that become
    /// visible `latency` cycles after insertion.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u64) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Fifo {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            latency,
        }
    }

    /// Pushes `value` at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] carrying `value` back if the FIFO already
    /// holds `capacity` entries.
    pub fn push(&mut self, now: Cycle, value: T) -> Result<(), FifoFullError<T>> {
        if self.entries.len() >= self.capacity {
            return Err(FifoFullError(value));
        }
        self.entries.push_back((now + self.latency, value));
        Ok(())
    }

    /// Pops the oldest entry if it is visible at cycle `now`.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        match self.entries.front() {
            Some((ready, _)) if *ready <= now => self.entries.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Peeks at the oldest entry if it is visible at cycle `now`.
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        match self.entries.front() {
            Some((ready, v)) if *ready <= now => Some(v),
            _ => None,
        }
    }

    /// Number of in-flight entries (visible or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIFO holds no entries at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push at this moment would be rejected.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Remaining capacity.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured visibility latency in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Drains every entry regardless of visibility, oldest first.
    ///
    /// Used when a unit is reset or a graph slice is swapped out and its
    /// in-flight traffic must be spilled.
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.entries.drain(..).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_respects_latency() {
        let mut f = Fifo::new(8, 3);
        f.push(Cycle::new(10), 1u32).unwrap();
        assert_eq!(f.pop(Cycle::new(12)), None);
        assert_eq!(f.peek(Cycle::new(13)), Some(&1));
        assert_eq!(f.pop(Cycle::new(13)), Some(1));
        assert!(f.is_empty());
    }

    #[test]
    fn zero_latency_is_same_cycle() {
        let mut f = Fifo::new(1, 0);
        f.push(Cycle::ZERO, 9u8).unwrap();
        assert_eq!(f.pop(Cycle::ZERO), Some(9));
    }

    #[test]
    fn backpressure_returns_value() {
        let mut f = Fifo::new(1, 0);
        f.push(Cycle::ZERO, "x").unwrap();
        let err = f.push(Cycle::ZERO, "y").unwrap_err();
        assert_eq!(err.0, "y");
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4, 1);
        for i in 0..4 {
            f.push(Cycle::new(i), i).unwrap();
        }
        let t = Cycle::new(100);
        assert_eq!(f.pop(t), Some(0));
        assert_eq!(f.pop(t), Some(1));
        assert_eq!(f.pop(t), Some(2));
        assert_eq!(f.pop(t), Some(3));
    }

    #[test]
    fn drain_ignores_visibility() {
        let mut f = Fifo::new(4, 100);
        f.push(Cycle::ZERO, 1).unwrap();
        f.push(Cycle::ZERO, 2).unwrap();
        let drained: Vec<_> = f.drain_all().collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0, 0);
    }
}
