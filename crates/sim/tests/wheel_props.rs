//! Property tests for [`gp_sim::HierarchicalWheel`]: insertion/drain
//! ordering, overflow ("too far in the future") handoff, and cascade
//! correctness, checked against a sorted [`BinaryHeap`] reference on
//! seeded random event streams.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gp_sim::rng::{Rng, StdRng};
use gp_sim::{HierarchicalWheel, WheelOverflow};

/// Exact reference scheduler: a min-heap of `(key, seq)` pairs, which is
/// precisely the drain contract (nondecreasing key, FIFO within a key).
#[derive(Default)]
struct HeapRef {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
}

impl HeapRef {
    fn insert(&mut self, key: u64) -> u64 {
        let seq = self.seq;
        self.heap.push(Reverse((key, seq)));
        self.seq += 1;
        seq
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(p)| p)
    }
}

#[test]
fn random_streams_drain_in_reference_order() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let slots = [2u64, 4, 8, 16][rng.gen_range(0..4usize)];
        let levels = rng.gen_range(1..4usize);
        let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(slots, levels);
        let mut reference = HeapRef::default();

        // Interleave bursts of inserts with partial drains so `now`
        // advances mid-stream and late keys exercise the clamping path.
        for _ in 0..rng.gen_range(4..12usize) {
            for _ in 0..rng.gen_range(1..40usize) {
                // Bias keys into the horizon but overshoot sometimes.
                let key = wheel.now() + rng.gen_range(0..wheel.horizon() + wheel.horizon() / 2);
                match wheel.insert(key, 0) {
                    Ok(effective) => {
                        assert!(key < wheel.now() + wheel.horizon());
                        assert_eq!(effective, key.max(wheel.now()));
                        reference.insert(effective);
                    }
                    Err(WheelOverflow { key: k, payload: _ }) => {
                        assert_eq!(k, key, "overflow must hand the key back verbatim");
                        assert!(
                            k >= wheel.now() + wheel.horizon(),
                            "only beyond-horizon keys may overflow (key {k}, now {}, horizon {})",
                            wheel.now(),
                            wheel.horizon()
                        );
                    }
                }
            }
            for _ in 0..rng.gen_range(0..30usize) {
                match (wheel.pop(), reference.pop()) {
                    (None, None) => break,
                    (got, want) => {
                        let (got_key, _) = got.expect("wheel drained early");
                        let (want_key, _) = want.expect("wheel has spurious payloads");
                        assert_eq!(got_key, want_key, "seed {seed}: key order diverged");
                    }
                }
            }
        }
        // Full final drain must empty both in lockstep.
        loop {
            match (wheel.pop(), reference.pop()) {
                (None, None) => break,
                (got, want) => {
                    let (got_key, _) = got.expect("wheel drained early");
                    let (want_key, _) = want.expect("wheel has spurious payloads");
                    assert_eq!(got_key, want_key, "seed {seed}: final drain diverged");
                }
            }
        }
        assert!(wheel.is_empty());
    }
}

#[test]
fn fifo_within_a_key_survives_cascades() {
    // Payloads carry their insertion index; within every key the drained
    // batch must be in ascending insertion order even when the key sat in
    // a coarse level first and cascaded down.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xF1F0 ^ seed);
        let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(4, 3); // horizon 64
        let mut inserted: Vec<(u64, u64)> = Vec::new();
        for i in 0..200u64 {
            let key = rng.gen_range(0..64u64);
            if wheel.insert(key, i).is_ok() {
                inserted.push((key, i));
            }
        }
        inserted.sort(); // (key, insertion index): the exact expected order
        let mut drained = Vec::new();
        while let Some((key, batch)) = wheel.drain_next() {
            for p in batch {
                drained.push((key, p));
            }
        }
        assert_eq!(drained, inserted, "seed {seed}");
    }
}

#[test]
fn cascades_preserve_every_payload_across_level_boundaries() {
    // One payload per key over several full level-boundary crossings:
    // nothing may be lost, duplicated, or drained at the wrong key.
    let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(4, 3); // horizon 64
    let keys: Vec<u64> = (0..64).step_by(3).collect(); // hits all 3 levels
    for &k in &keys {
        assert_eq!(wheel.insert(k, k * 10), Ok(k));
    }
    let mut seen = Vec::new();
    while let Some((key, batch)) = wheel.drain_next() {
        assert_eq!(batch, vec![key * 10], "payload must drain at its own key");
        seen.push(key);
    }
    assert_eq!(seen, keys);
}

#[test]
fn overflow_handoff_round_trips_after_advancing() {
    let mut wheel: HierarchicalWheel<&str> = HierarchicalWheel::new(4, 2); // horizon 16
    wheel.insert(10, "advance-past-me").unwrap();

    // Beyond the horizon: handed back, wheel untouched.
    let overflow = wheel.insert(20, "parked").unwrap_err();
    assert_eq!(overflow.key, 20);
    assert_eq!(wheel.len(), 1);

    // After draining advances `now`, the parked payload fits and drains at
    // its original key — the caller-side half of the handoff protocol.
    assert_eq!(wheel.drain_next(), Some((10, vec!["advance-past-me"])));
    assert!(overflow.key < wheel.now() + wheel.horizon());
    assert_eq!(wheel.insert(overflow.key, overflow.payload), Ok(20));
    assert_eq!(wheel.drain_next(), Some((20, vec!["parked"])));
    assert!(wheel.is_empty());
}

#[test]
fn len_tracks_inserts_drains_and_cascades() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(8, 2); // horizon 64
    let mut resident = 0usize;
    for i in 0..500u64 {
        let key = wheel.now() + rng.gen_range(0..64u64);
        if wheel.insert(key, i).is_ok() {
            resident += 1;
        }
        assert_eq!(wheel.len(), resident);
        if rng.gen_bool(0.3) {
            if let Some((_, batch)) = wheel.drain_next() {
                resident -= batch.len();
            }
            assert_eq!(wheel.len(), resident);
        }
    }
    while wheel.drain_next().is_some() {}
    assert!(wheel.is_empty());
    assert_eq!(wheel.len(), 0);
}
