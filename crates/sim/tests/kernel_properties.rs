//! Property tests of the simulation kernel against simple reference
//! models: the latency FIFO behaves like a timestamped `VecDeque`, the
//! pipeline retires in issue order after exactly `depth` cycles, and the
//! event wheel is a stable priority queue.

use std::collections::VecDeque;

use proptest::prelude::*;

use gp_sim::{Cycle, EventWheel, Fifo, Pipeline};

#[derive(Debug, Clone)]
enum FifoOp {
    Push(u16),
    Pop,
    Advance(u8),
}

fn arb_fifo_ops() -> impl Strategy<Value = Vec<FifoOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(FifoOp::Push),
            Just(FifoOp::Pop),
            (1u8..10).prop_map(FifoOp::Advance),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn fifo_matches_reference_model(
        ops in arb_fifo_ops(),
        capacity in 1usize..16,
        latency in 0u64..8,
    ) {
        let mut fifo = Fifo::new(capacity, latency);
        let mut model: VecDeque<(u64, u16)> = VecDeque::new();
        let mut now = Cycle::ZERO;
        for op in ops {
            match op {
                FifoOp::Push(v) => {
                    let accepted = fifo.push(now, v).is_ok();
                    let model_accepts = model.len() < capacity;
                    prop_assert_eq!(accepted, model_accepts);
                    if model_accepts {
                        model.push_back((now.get() + latency, v));
                    }
                }
                FifoOp::Pop => {
                    let got = fifo.pop(now);
                    let expected = match model.front() {
                        Some(&(ready, v)) if ready <= now.get() => {
                            model.pop_front();
                            Some(v)
                        }
                        _ => None,
                    };
                    prop_assert_eq!(got, expected);
                }
                FifoOp::Advance(d) => now += u64::from(d),
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
        }
    }

    #[test]
    fn pipeline_retires_in_order_after_depth(
        gaps in proptest::collection::vec(1u64..5, 1..50),
        depth in 1u64..8,
    ) {
        let mut p = Pipeline::new(depth);
        let mut now = Cycle::ZERO;
        let mut issued = Vec::new();
        for (i, gap) in gaps.iter().enumerate() {
            prop_assert!(p.can_issue(now));
            p.issue(now, i);
            issued.push((now, i));
            now += *gap;
        }
        // Drain: each op retires exactly at issue + depth, in order.
        let mut retired = Vec::new();
        let mut t = Cycle::ZERO;
        while retired.len() < issued.len() {
            while let Some(v) = p.retire(t) {
                retired.push((t, v));
            }
            t = t.next();
            prop_assert!(t.get() < 10_000, "pipeline livelock");
        }
        for ((issue_t, a), (retire_t, b)) in issued.iter().zip(&retired) {
            prop_assert_eq!(a, b);
            prop_assert_eq!(retire_t.get(), issue_t.get() + depth);
        }
    }

    #[test]
    fn wheel_pops_sorted_and_stable(
        entries in proptest::collection::vec((0u64..100, any::<u16>()), 1..100),
    ) {
        let mut wheel = EventWheel::new();
        for (t, v) in &entries {
            wheel.schedule(Cycle::new(*t), (*t, *v));
        }
        let mut expected: Vec<(u64, u16)> = entries.clone();
        // Stable by time: equal timestamps keep insertion order.
        expected.sort_by_key(|(t, _)| *t);
        let mut got = Vec::new();
        while let Some(x) = wheel.pop_due(Cycle::NEVER) {
            got.push(x);
        }
        prop_assert_eq!(got, expected);
    }
}
