//! Property tests of the simulation kernel against simple reference
//! models: the latency FIFO behaves like a timestamped `VecDeque`, the
//! pipeline retires in issue order after exactly `depth` cycles, and the
//! event wheel is a stable priority queue.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_sim::rng::StdRng`], so every run exercises the same inputs.

use std::collections::VecDeque;

use gp_sim::rng::{Rng, StdRng};
use gp_sim::{Cycle, EventWheel, Fifo, Pipeline};

#[derive(Debug, Clone)]
enum FifoOp {
    Push(u16),
    Pop,
    Advance(u8),
}

fn random_fifo_ops(rng: &mut StdRng) -> Vec<FifoOp> {
    let len = rng.gen_range(1..200usize);
    (0..len)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => FifoOp::Push(rng.gen_range(0..u64::from(u16::MAX) as u32 + 1) as u16),
            1 => FifoOp::Pop,
            _ => FifoOp::Advance(rng.gen_range(1..10u8)),
        })
        .collect()
}

#[test]
fn fifo_matches_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xF1F0);
    for case in 0..200 {
        let ops = random_fifo_ops(&mut rng);
        let capacity = rng.gen_range(1..16usize);
        let latency = rng.gen_range(0..8u64);
        let mut fifo = Fifo::new(capacity, latency);
        let mut model: VecDeque<(u64, u16)> = VecDeque::new();
        let mut now = Cycle::ZERO;
        for op in &ops {
            match *op {
                FifoOp::Push(v) => {
                    let accepted = fifo.push(now, v).is_ok();
                    let model_accepts = model.len() < capacity;
                    assert_eq!(accepted, model_accepts, "case {case}");
                    if model_accepts {
                        model.push_back((now.get() + latency, v));
                    }
                }
                FifoOp::Pop => {
                    let got = fifo.pop(now);
                    let expected = match model.front() {
                        Some(&(ready, v)) if ready <= now.get() => {
                            model.pop_front();
                            Some(v)
                        }
                        _ => None,
                    };
                    assert_eq!(got, expected, "case {case}");
                }
                FifoOp::Advance(d) => now += u64::from(d),
            }
            assert_eq!(fifo.len(), model.len(), "case {case}");
            assert_eq!(fifo.is_empty(), model.is_empty(), "case {case}");
        }
    }
}

#[test]
fn pipeline_retires_in_order_after_depth() {
    let mut rng = StdRng::seed_from_u64(0x9199);
    for case in 0..200 {
        let gaps: Vec<u64> = (0..rng.gen_range(1..50usize))
            .map(|_| rng.gen_range(1..5u64))
            .collect();
        let depth = rng.gen_range(1..8u64);
        let mut p = Pipeline::new(depth);
        let mut now = Cycle::ZERO;
        let mut issued = Vec::new();
        for (i, gap) in gaps.iter().enumerate() {
            assert!(p.can_issue(now), "case {case}");
            p.issue(now, i);
            issued.push((now, i));
            now += *gap;
        }
        // Drain: each op retires exactly at issue + depth, in order.
        let mut retired = Vec::new();
        let mut t = Cycle::ZERO;
        while retired.len() < issued.len() {
            while let Some(v) = p.retire(t) {
                retired.push((t, v));
            }
            t = t.next();
            assert!(t.get() < 10_000, "pipeline livelock in case {case}");
        }
        for ((issue_t, a), (retire_t, b)) in issued.iter().zip(&retired) {
            assert_eq!(a, b, "case {case}");
            assert_eq!(retire_t.get(), issue_t.get() + depth, "case {case}");
        }
    }
}

#[test]
fn wheel_pops_sorted_and_stable() {
    let mut rng = StdRng::seed_from_u64(0x8EE1);
    for case in 0..200 {
        let entries: Vec<(u64, u16)> = (0..rng.gen_range(1..100usize))
            .map(|_| {
                (
                    rng.gen_range(0..100u64),
                    rng.gen_range(0..u64::from(u16::MAX) as u32 + 1) as u16,
                )
            })
            .collect();
        let mut wheel = EventWheel::new();
        for (t, v) in &entries {
            wheel.schedule(Cycle::new(*t), (*t, *v));
        }
        let mut expected: Vec<(u64, u16)> = entries.clone();
        // Stable by time: equal timestamps keep insertion order.
        expected.sort_by_key(|(t, _)| *t);
        let mut got = Vec::new();
        while let Some(x) = wheel.pop_due(Cycle::NEVER) {
            got.push(x);
        }
        assert_eq!(got, expected, "case {case}");
    }
}
