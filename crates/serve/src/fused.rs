//! Multi-source frontier fusion: up to [`LANES`] single-source path
//! queries executed as **one** event-driven run.
//!
//! The executor batches same-class path queries (SSSP / BFS / SSWP) whose
//! sources differ and runs them as a single [`FusedPaths`] instance whose
//! per-vertex state is a lane vector `[f64; LANES]` — lane `l` carries the
//! value of the `l`-th source's single-source problem. Reduce, coalesce,
//! and propagate apply the class's semiring *lane-wise*, so one graph
//! traversal (one pass over the CSR per frontier wave, shared cache
//! blocks, shared scheduling) services every lane at once.
//!
//! Because each lane's operators are exactly the single-source
//! algorithm's (`min`/`+w` for SSSP, `min`/`+1` for BFS, `max`/`min(w)`
//! for SSWP) and min/max fixed points are unique regardless of event
//! order, every lane's result is **bit-identical** to a standalone run of
//! the corresponding [`Sssp`](gp_algorithms::Sssp) /
//! [`Bfs`](gp_algorithms::Bfs) / [`Sswp`](gp_algorithms::Sswp) projected
//! through `value_to_f64` — the property `fused_lanes_match_single_source`
//! pins. Idle lanes hold the semiring identity and are self-silencing:
//! `∞ + w = ∞` and `min(0, w) = 0` never beat a stored identity, so they
//! add no events beyond the shared traversal itself.

use gp_algorithms::DeltaAlgorithm;
use gp_graph::{EdgeRef, GraphView, VertexId};

/// Lane count of a fused run: how many same-class sources share one
/// traversal. Eight keeps the per-vertex state at one cache line.
pub const LANES: usize = 8;

/// Which single-source semiring every lane of a [`FusedPaths`] run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// Shortest paths: `reduce = min`, `propagate = basis + w`.
    Sssp,
    /// Hop counts: `reduce = min`, `propagate = basis + 1`.
    Bfs,
    /// Widest paths: `reduce = max`, `propagate = min(basis, w)`.
    Sswp,
}

impl PathKind {
    /// Value a vertex starts at (the reduce identity).
    fn init(self) -> f64 {
        match self {
            PathKind::Sssp | PathKind::Bfs => f64::INFINITY,
            PathKind::Sswp => 0.0,
        }
    }

    /// Seed delta deposited at a lane's source vertex.
    fn seed(self) -> f64 {
        match self {
            PathKind::Sssp | PathKind::Bfs => 0.0,
            PathKind::Sswp => f64::INFINITY,
        }
    }

    /// Lane-wise reduce/coalesce operator.
    fn reduce(self, a: f64, b: f64) -> f64 {
        match self {
            PathKind::Sssp | PathKind::Bfs => a.min(b),
            PathKind::Sswp => a.max(b),
        }
    }

    /// Whether `new` improves on `old` (strict, matching the
    /// single-source `propagation_basis` rules).
    fn improves(self, new: f64, old: f64) -> bool {
        match self {
            PathKind::Sssp | PathKind::Bfs => new < old,
            PathKind::Sswp => new > old,
        }
    }

    /// Per-edge propagation of one lane's basis.
    fn propagate(self, basis: f64, weight: f32) -> f64 {
        match self {
            PathKind::Sssp => basis + f64::from(weight),
            PathKind::Bfs => basis + 1.0,
            PathKind::Sswp => basis.min(f64::from(weight)),
        }
    }

    /// Single-lane urgency, mirroring the single-source hints (§V):
    /// near-the-root distances first, wide widths first.
    fn urgency(self, delta: f64) -> f64 {
        match self {
            PathKind::Sssp | PathKind::Bfs => -delta,
            PathKind::Sswp => delta,
        }
    }
}

/// Up to [`LANES`] same-class single-source problems fused into one
/// delta-accumulative run. Unused lanes (when fewer than [`LANES`] sources
/// are batched) stay at the identity throughout.
#[derive(Debug, Clone)]
pub struct FusedPaths {
    kind: PathKind,
    sources: Vec<VertexId>,
}

impl FusedPaths {
    /// Fuses `sources` (1..=[`LANES`] of them) into one `kind` run.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or holds more than [`LANES`] entries.
    pub fn new(kind: PathKind, sources: &[VertexId]) -> Self {
        assert!(
            !sources.is_empty() && sources.len() <= LANES,
            "fused run needs 1..={LANES} sources, got {}",
            sources.len()
        );
        FusedPaths {
            kind,
            sources: sources.to_vec(),
        }
    }

    /// The semiring every lane runs.
    pub fn kind(&self) -> PathKind {
        self.kind
    }

    /// The fused sources; lane `l` solves from `sources()[l]`.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Identity-filled lane vector.
    fn identity_lanes(&self) -> [f64; LANES] {
        [self.kind.init(); LANES]
    }
}

impl DeltaAlgorithm for FusedPaths {
    type Value = [f64; LANES];
    type Delta = [f64; LANES];

    fn name(&self) -> &'static str {
        match self.kind {
            PathKind::Sssp => "fused-sssp",
            PathKind::Bfs => "fused-bfs",
            PathKind::Sswp => "fused-sswp",
        }
    }

    fn needs_weights(&self) -> bool {
        matches!(self.kind, PathKind::Sssp | PathKind::Sswp)
    }

    fn init_value(&self, _v: VertexId) -> [f64; LANES] {
        self.identity_lanes()
    }

    fn identity_delta(&self) -> [f64; LANES] {
        self.identity_lanes()
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<[f64; LANES]> {
        let mut lanes = self.identity_lanes();
        let mut any = false;
        for (l, &s) in self.sources.iter().enumerate() {
            if s == v {
                lanes[l] = self.kind.seed();
                any = true;
            }
        }
        any.then_some(lanes)
    }

    fn reduce(&self, value: [f64; LANES], delta: [f64; LANES]) -> [f64; LANES] {
        std::array::from_fn(|l| self.kind.reduce(value[l], delta[l]))
    }

    fn coalesce(&self, a: [f64; LANES], b: [f64; LANES]) -> [f64; LANES] {
        std::array::from_fn(|l| self.kind.reduce(a[l], b[l]))
    }

    fn propagation_basis(&self, old: [f64; LANES], new: [f64; LANES]) -> Option<[f64; LANES]> {
        // Only lanes that improved re-propagate; the rest are masked to
        // the identity, exactly like a standalone run that saw no change.
        let mut basis = self.identity_lanes();
        let mut any = false;
        for l in 0..LANES {
            if self.kind.improves(new[l], old[l]) {
                basis[l] = new[l];
                any = true;
            }
        }
        any.then_some(basis)
    }

    fn propagate(
        &self,
        basis: [f64; LANES],
        _src: VertexId,
        _src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<[f64; LANES]> {
        let identity = self.kind.init();
        let mut out = self.identity_lanes();
        let mut any = false;
        for l in 0..LANES {
            if basis[l] != identity {
                out[l] = self.kind.propagate(basis[l], edge.weight);
                any = true;
            }
        }
        any.then_some(out)
    }

    /// Most urgent lane wins the bucket: the wheel schedules the whole
    /// lane vector at once, and any order converges (§II-B), so a crude
    /// max over active lanes is enough.
    fn urgency(&self, delta: [f64; LANES]) -> f64 {
        let identity = self.kind.init();
        delta
            .iter()
            .filter(|&&d| d != identity)
            .map(|&d| self.kind.urgency(d))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(-1e300) // never NaN / -inf even for an all-identity delta
    }

    /// Lane 0's value — fused results are read per lane via the typed
    /// state, not through this projection.
    fn value_to_f64(&self, v: [f64; LANES]) -> f64 {
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::engine::run_sequential;
    use gp_algorithms::{Bfs, Sssp, Sswp};
    use gp_graph::generators::{rmat, RmatConfig, WeightMode};
    use gp_graph::rng::{Rng, StdRng};
    use gp_turbo::{run_turbo, run_turbo_seeded, TurboConfig};

    fn weighted_rmat(seed: u64) -> gp_graph::CsrGraph {
        let mut cfg = RmatConfig::graph500(512, 4_096);
        cfg.weights = WeightMode::Uniform(1.0, 9.0);
        rmat(&cfg, seed)
    }

    #[test]
    fn fused_lanes_match_single_source() {
        let g = weighted_rmat(13);
        let mut rng = StdRng::seed_from_u64(99);
        let sources: Vec<VertexId> = (0..LANES)
            .map(|_| VertexId::new(rng.gen_range(0..512u32)))
            .collect();
        for kind in [PathKind::Sssp, PathKind::Bfs, PathKind::Sswp] {
            let fused = FusedPaths::new(kind, &sources);
            let (mut values, seeds) = gp_algorithms::engine::initial_state(&fused, &g);
            run_turbo_seeded(&fused, &g, &mut values, &seeds, &TurboConfig::default());
            for (l, &src) in sources.iter().enumerate() {
                let single: Vec<f64> = match kind {
                    PathKind::Sssp => run_sequential(&Sssp::new(src), &g).values,
                    PathKind::Bfs => run_sequential(&Bfs::new(src), &g).values,
                    PathKind::Sswp => run_sequential(&Sswp::new(src), &g).values,
                };
                let lane: Vec<f64> = values.iter().map(|v| v[l]).collect();
                let lane_bits: Vec<u64> = lane.iter().map(|v| v.to_bits()).collect();
                let single_bits: Vec<u64> = single.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    lane_bits, single_bits,
                    "{kind:?} lane {l} (src {src}) diverged from single-source"
                );
            }
        }
    }

    #[test]
    fn duplicate_sources_share_a_lane_result() {
        let g = weighted_rmat(5);
        let src = VertexId::new(7);
        let fused = FusedPaths::new(PathKind::Sssp, &[src, src]);
        let (mut values, seeds) = gp_algorithms::engine::initial_state(&fused, &g);
        run_turbo_seeded(&fused, &g, &mut values, &seeds, &TurboConfig::default());
        assert!(values.iter().all(|v| v[0].to_bits() == v[1].to_bits()));
    }

    #[test]
    fn idle_lanes_stay_at_identity() {
        let g = weighted_rmat(3);
        let fused = FusedPaths::new(PathKind::Sswp, &[VertexId::new(1)]);
        let out = run_turbo(&fused, &g, &TurboConfig::default());
        assert!(out.events_processed > 0);
        let (mut values, seeds) = gp_algorithms::engine::initial_state(&fused, &g);
        run_turbo_seeded(&fused, &g, &mut values, &seeds, &TurboConfig::default());
        for v in &values {
            for lane in v.iter().take(LANES).skip(1) {
                assert_eq!(*lane, 0.0, "idle SSWP lane moved off the identity");
            }
        }
    }

    #[test]
    #[should_panic(expected = "fused run needs")]
    fn too_many_sources_panic() {
        let sources = vec![VertexId::new(0); LANES + 1];
        let _ = FusedPaths::new(PathKind::Bfs, &sources);
    }
}
