//! Admission control: bounded per-tenant queues with typed load-shedding.
//!
//! Every query enters through [`AdmissionQueues::submit`], which enforces
//! three limits *before* any work is queued: the tenant must exist, the
//! tenant's own queue must have room (one tenant flooding the service
//! cannot starve the others — its surplus is shed, not theirs), and the
//! global backlog across all tenants must be under the overload ceiling.
//! Shedding is a typed [`Rejection`] returned to the caller immediately —
//! never a silent drop, never an unbounded queue.
//!
//! The executor drains admitted requests round-robin across tenants (one
//! slice per tenant per sweep), which keeps tail latency fair under
//! asymmetric offered load.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a request was shed instead of served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant's bounded queue is full — per-tenant backpressure.
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: String,
    },
    /// The tenant name is not registered with the server.
    UnknownTenant {
        /// The unrecognized name.
        tenant: String,
    },
    /// The global backlog (all tenants) hit the overload ceiling.
    Overloaded,
    /// The query itself is malformed (e.g. vertex id out of range).
    BadQuery(String),
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { tenant } => write!(f, "queue-full: tenant {tenant:?}"),
            Rejection::UnknownTenant { tenant } => write!(f, "unknown-tenant: {tenant:?}"),
            Rejection::Overloaded => write!(f, "overloaded: global backlog at capacity"),
            Rejection::BadQuery(msg) => write!(f, "bad-query: {msg}"),
            Rejection::ShuttingDown => write!(f, "shutting-down"),
        }
    }
}

struct Queues<T> {
    per_tenant: Vec<VecDeque<T>>,
    total: usize,
    /// Round-robin cursor: which tenant the next drain sweep starts at.
    cursor: usize,
    closed: bool,
}

/// Bounded per-tenant admission queues with a condvar-signalled drain side.
pub struct AdmissionQueues<T> {
    tenants: Vec<String>,
    queue_capacity: usize,
    global_capacity: usize,
    state: Mutex<Queues<T>>,
    ready: Condvar,
}

impl<T> AdmissionQueues<T> {
    /// Creates one bounded queue per tenant. `queue_capacity` bounds each
    /// tenant's backlog; `global_capacity` bounds the sum.
    pub fn new(tenants: Vec<String>, queue_capacity: usize, global_capacity: usize) -> Self {
        let n = tenants.len();
        AdmissionQueues {
            tenants,
            queue_capacity: queue_capacity.max(1),
            global_capacity: global_capacity.max(1),
            state: Mutex::new(Queues {
                per_tenant: (0..n).map(|_| VecDeque::new()).collect(),
                total: 0,
                cursor: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Registered tenant names, in id order.
    pub fn tenants(&self) -> &[String] {
        &self.tenants
    }

    /// Resolves a tenant name to its id.
    pub fn tenant_id(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t == name)
    }

    /// Admits `item` for `tenant` (by id), or sheds it with a typed
    /// [`Rejection`].
    ///
    /// # Errors
    ///
    /// [`Rejection::UnknownTenant`] for an out-of-range id,
    /// [`Rejection::QueueFull`] / [`Rejection::Overloaded`] on the
    /// per-tenant / global bounds, [`Rejection::ShuttingDown`] after
    /// [`close`](AdmissionQueues::close).
    pub fn submit(&self, tenant: usize, item: T) -> Result<(), Rejection> {
        if tenant >= self.tenants.len() {
            return Err(Rejection::UnknownTenant {
                tenant: format!("#{tenant}"),
            });
        }
        let mut q = self.state.lock().expect("admission lock poisoned");
        if q.closed {
            return Err(Rejection::ShuttingDown);
        }
        if q.total >= self.global_capacity {
            return Err(Rejection::Overloaded);
        }
        if q.per_tenant[tenant].len() >= self.queue_capacity {
            return Err(Rejection::QueueFull {
                tenant: self.tenants[tenant].clone(),
            });
        }
        q.per_tenant[tenant].push_back(item);
        q.total += 1;
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Drains up to `max` admitted items, round-robin across tenants,
    /// blocking up to `wait` when nothing is queued. Returns an empty
    /// vector on timeout or when the queues are closed and empty (the
    /// executor's exit signal is closed + empty).
    pub fn drain(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut q = self.state.lock().expect("admission lock poisoned");
        if q.total == 0 && !q.closed {
            let (guard, _timeout) = self
                .ready
                .wait_timeout(q, wait)
                .expect("admission lock poisoned");
            q = guard;
        }
        let n = q.per_tenant.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Round-robin: one item per tenant per pass, starting at the
        // cursor, until `max` items or empty.
        while out.len() < max && q.total > 0 {
            let mut took_any = false;
            for i in 0..n {
                if out.len() >= max {
                    break;
                }
                let t = (q.cursor + i) % n;
                if let Some(item) = q.per_tenant[t].pop_front() {
                    q.total -= 1;
                    out.push(item);
                    took_any = true;
                }
            }
            q.cursor = (q.cursor + 1) % n;
            if !took_any {
                break;
            }
        }
        out
    }

    /// Current global backlog.
    pub fn backlog(&self) -> usize {
        self.state.lock().expect("admission lock poisoned").total
    }

    /// Whether the queues are closed and drained — the executor's exit
    /// condition.
    pub fn is_finished(&self) -> bool {
        let q = self.state.lock().expect("admission lock poisoned");
        q.closed && q.total == 0
    }

    /// Stops admitting new work; already-queued items still drain.
    pub fn close(&self) {
        self.state.lock().expect("admission lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(cap: usize, global: usize) -> AdmissionQueues<u32> {
        AdmissionQueues::new(vec!["a".into(), "b".into()], cap, global)
    }

    #[test]
    fn per_tenant_bound_sheds_only_the_flooder() {
        let q = queues(2, 100);
        assert!(q.submit(0, 1).is_ok());
        assert!(q.submit(0, 2).is_ok());
        assert_eq!(
            q.submit(0, 3),
            Err(Rejection::QueueFull { tenant: "a".into() })
        );
        // The other tenant still gets in.
        assert!(q.submit(1, 9).is_ok());
    }

    #[test]
    fn global_bound_rejects_with_overloaded() {
        let q = queues(10, 3);
        for i in 0..3 {
            q.submit((i % 2) as usize, i).unwrap();
        }
        assert_eq!(q.submit(1, 99), Err(Rejection::Overloaded));
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let q = queues(2, 10);
        assert!(matches!(
            q.submit(7, 0),
            Err(Rejection::UnknownTenant { .. })
        ));
    }

    #[test]
    fn drain_is_round_robin_and_bounded() {
        let q = queues(10, 100);
        for i in 0..4u32 {
            q.submit(0, i).unwrap();
        }
        q.submit(1, 100).unwrap();
        let batch = q.drain(3, Duration::from_millis(1));
        // One per tenant per pass: a0, b100, then a1.
        assert_eq!(batch, vec![0, 100, 1]);
        assert_eq!(q.backlog(), 2);
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let q = queues(4, 10);
        q.submit(0, 5).unwrap();
        q.close();
        assert_eq!(q.submit(0, 6), Err(Rejection::ShuttingDown));
        assert!(!q.is_finished());
        assert_eq!(q.drain(10, Duration::from_millis(1)), vec![5]);
        assert!(q.is_finished());
    }
}
