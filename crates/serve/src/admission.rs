//! Admission control: bounded per-tenant queues with typed load-shedding,
//! fanned out across executor lanes.
//!
//! Every query enters through [`AdmissionQueues::submit`], which enforces
//! three limits *before* any work is queued: the tenant must exist, the
//! tenant's own backlog (summed across lanes) must have room (one tenant
//! flooding the service cannot starve the others — its surplus is shed,
//! not theirs), and the global backlog across all tenants must be under
//! the overload ceiling. Shedding is a typed [`Rejection`] returned to the
//! caller immediately — never a silent drop, never an unbounded queue.
//!
//! The queues are partitioned into *lanes*, one per executor thread. The
//! client routes each query to a lane by `(class, source)` hash, so one
//! lane owns all queries for a given path source and its per-source cache
//! stays thread-local. Each lane drains its own requests round-robin
//! across tenants (one slice per tenant per sweep), which keeps tail
//! latency fair under asymmetric offered load; each lane has its own
//! condvar so an idle executor sleeps until *its* lane has work.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a request was shed instead of served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant's bounded queue is full — per-tenant backpressure.
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: String,
    },
    /// The tenant name is not registered with the server.
    UnknownTenant {
        /// The unrecognized name.
        tenant: String,
    },
    /// The global backlog (all tenants) hit the overload ceiling.
    Overloaded,
    /// The query itself is malformed (e.g. vertex id out of range).
    BadQuery(String),
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { tenant } => write!(f, "queue-full: tenant {tenant:?}"),
            Rejection::UnknownTenant { tenant } => write!(f, "unknown-tenant: {tenant:?}"),
            Rejection::Overloaded => write!(f, "overloaded: global backlog at capacity"),
            Rejection::BadQuery(msg) => write!(f, "bad-query: {msg}"),
            Rejection::ShuttingDown => write!(f, "shutting-down"),
        }
    }
}

struct Queues<T> {
    /// `per_lane[lane][tenant]` — each lane has its own per-tenant queues.
    per_lane: Vec<Vec<VecDeque<T>>>,
    /// Backlog per lane (what an idle lane executor waits on).
    lane_totals: Vec<usize>,
    /// Backlog per tenant across lanes (what the per-tenant bound checks).
    tenant_totals: Vec<usize>,
    total: usize,
    /// Per-lane round-robin cursors: which tenant each lane's next drain
    /// sweep starts at.
    cursors: Vec<usize>,
    closed: bool,
}

/// Bounded per-tenant admission queues, partitioned into per-executor
/// lanes, with a condvar-signalled drain side per lane.
pub struct AdmissionQueues<T> {
    tenants: Vec<String>,
    queue_capacity: usize,
    global_capacity: usize,
    state: Mutex<Queues<T>>,
    /// One condvar per lane, all paired with the single `state` mutex.
    ready: Vec<Condvar>,
}

impl<T> AdmissionQueues<T> {
    /// Creates one bounded queue per tenant per lane. `queue_capacity`
    /// bounds each tenant's backlog summed across lanes; `global_capacity`
    /// bounds the sum over everything; `lanes` (min 1) is the executor
    /// fan-out.
    pub fn new(
        tenants: Vec<String>,
        queue_capacity: usize,
        global_capacity: usize,
        lanes: usize,
    ) -> Self {
        let n = tenants.len();
        let lanes = lanes.max(1);
        AdmissionQueues {
            tenants,
            queue_capacity: queue_capacity.max(1),
            global_capacity: global_capacity.max(1),
            state: Mutex::new(Queues {
                per_lane: (0..lanes)
                    .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                    .collect(),
                lane_totals: vec![0; lanes],
                tenant_totals: vec![0; n],
                total: 0,
                cursors: vec![0; lanes],
                closed: false,
            }),
            ready: (0..lanes).map(|_| Condvar::new()).collect(),
        }
    }

    /// Number of executor lanes.
    pub fn lanes(&self) -> usize {
        self.ready.len()
    }

    /// Registered tenant names, in id order.
    pub fn tenants(&self) -> &[String] {
        &self.tenants
    }

    /// Resolves a tenant name to its id.
    pub fn tenant_id(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t == name)
    }

    /// Admits `item` for `tenant` (by id) on `lane`, or sheds it with a
    /// typed [`Rejection`]. Lanes index modulo the lane count, so any
    /// router hash can be passed directly.
    ///
    /// # Errors
    ///
    /// [`Rejection::UnknownTenant`] for an out-of-range id,
    /// [`Rejection::QueueFull`] / [`Rejection::Overloaded`] on the
    /// per-tenant / global bounds, [`Rejection::ShuttingDown`] after
    /// [`close`](AdmissionQueues::close).
    pub fn submit(&self, tenant: usize, lane: usize, item: T) -> Result<(), Rejection> {
        if tenant >= self.tenants.len() {
            return Err(Rejection::UnknownTenant {
                tenant: format!("#{tenant}"),
            });
        }
        let lane = lane % self.ready.len();
        let mut q = self.state.lock().expect("admission lock poisoned");
        if q.closed {
            return Err(Rejection::ShuttingDown);
        }
        if q.total >= self.global_capacity {
            return Err(Rejection::Overloaded);
        }
        if q.tenant_totals[tenant] >= self.queue_capacity {
            return Err(Rejection::QueueFull {
                tenant: self.tenants[tenant].clone(),
            });
        }
        q.per_lane[lane][tenant].push_back(item);
        q.lane_totals[lane] += 1;
        q.tenant_totals[tenant] += 1;
        q.total += 1;
        drop(q);
        self.ready[lane].notify_one();
        Ok(())
    }

    /// Drains up to `max` admitted items from `lane`, round-robin across
    /// tenants, blocking up to `wait` when the lane is empty. Returns an
    /// empty vector on timeout or when the queues are closed and the lane
    /// is empty (the lane executor's exit signal is closed + empty).
    pub fn drain(&self, lane: usize, max: usize, wait: Duration) -> Vec<T> {
        let lane = lane % self.ready.len();
        let mut q = self.state.lock().expect("admission lock poisoned");
        if q.lane_totals[lane] == 0 && !q.closed {
            let (guard, _timeout) = self.ready[lane]
                .wait_timeout(q, wait)
                .expect("admission lock poisoned");
            q = guard;
        }
        let n = q.per_lane[lane].len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Round-robin: one item per tenant per pass, starting at the
        // lane's cursor, until `max` items or empty.
        while out.len() < max && q.lane_totals[lane] > 0 {
            let mut took_any = false;
            for i in 0..n {
                if out.len() >= max {
                    break;
                }
                let t = (q.cursors[lane] + i) % n;
                if let Some(item) = q.per_lane[lane][t].pop_front() {
                    q.lane_totals[lane] -= 1;
                    q.tenant_totals[t] -= 1;
                    q.total -= 1;
                    out.push(item);
                    took_any = true;
                }
            }
            q.cursors[lane] = (q.cursors[lane] + 1) % n;
            if !took_any {
                break;
            }
        }
        out
    }

    /// Current global backlog.
    pub fn backlog(&self) -> usize {
        self.state.lock().expect("admission lock poisoned").total
    }

    /// Whether the queues are closed and `lane` is drained — the lane
    /// executor's exit condition.
    pub fn is_finished(&self, lane: usize) -> bool {
        let lane = lane % self.ready.len();
        let q = self.state.lock().expect("admission lock poisoned");
        q.closed && q.lane_totals[lane] == 0
    }

    /// Stops admitting new work; already-queued items still drain.
    pub fn close(&self) {
        self.state.lock().expect("admission lock poisoned").closed = true;
        for cv in &self.ready {
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(cap: usize, global: usize, lanes: usize) -> AdmissionQueues<u32> {
        AdmissionQueues::new(vec!["a".into(), "b".into()], cap, global, lanes)
    }

    #[test]
    fn per_tenant_bound_sheds_only_the_flooder() {
        let q = queues(2, 100, 1);
        assert!(q.submit(0, 0, 1).is_ok());
        assert!(q.submit(0, 0, 2).is_ok());
        assert_eq!(
            q.submit(0, 0, 3),
            Err(Rejection::QueueFull { tenant: "a".into() })
        );
        // The other tenant still gets in.
        assert!(q.submit(1, 0, 9).is_ok());
    }

    #[test]
    fn per_tenant_bound_spans_lanes() {
        // The tenant cap is on the tenant's total backlog, not per lane —
        // spreading a flood across lanes must not dodge the bound.
        let q = queues(2, 100, 4);
        assert!(q.submit(0, 0, 1).is_ok());
        assert!(q.submit(0, 3, 2).is_ok());
        assert_eq!(
            q.submit(0, 1, 3),
            Err(Rejection::QueueFull { tenant: "a".into() })
        );
        assert!(q.submit(1, 1, 9).is_ok());
    }

    #[test]
    fn global_bound_rejects_with_overloaded() {
        let q = queues(10, 3, 2);
        for i in 0..3 {
            q.submit((i % 2) as usize, i as usize, i).unwrap();
        }
        assert_eq!(q.submit(1, 0, 99), Err(Rejection::Overloaded));
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let q = queues(2, 10, 1);
        assert!(matches!(
            q.submit(7, 0, 0),
            Err(Rejection::UnknownTenant { .. })
        ));
    }

    #[test]
    fn drain_is_round_robin_and_bounded() {
        let q = queues(10, 100, 1);
        for i in 0..4u32 {
            q.submit(0, 0, i).unwrap();
        }
        q.submit(1, 0, 100).unwrap();
        let batch = q.drain(0, 3, Duration::from_millis(1));
        // One per tenant per pass: a0, b100, then a1.
        assert_eq!(batch, vec![0, 100, 1]);
        assert_eq!(q.backlog(), 2);
    }

    #[test]
    fn lanes_are_isolated() {
        let q = queues(10, 100, 2);
        q.submit(0, 0, 1).unwrap();
        q.submit(0, 1, 2).unwrap();
        q.submit(1, 1, 3).unwrap();
        assert_eq!(q.drain(0, 10, Duration::from_millis(1)), vec![1]);
        assert_eq!(q.drain(1, 10, Duration::from_millis(1)), vec![2, 3]);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let q = queues(4, 10, 2);
        q.submit(0, 1, 5).unwrap();
        q.close();
        assert_eq!(q.submit(0, 1, 6), Err(Rejection::ShuttingDown));
        // Lane 0 is already drained; lane 1 still holds the item.
        assert!(q.is_finished(0));
        assert!(!q.is_finished(1));
        assert_eq!(q.drain(1, 10, Duration::from_millis(1)), vec![5]);
        assert!(q.is_finished(1));
    }
}
