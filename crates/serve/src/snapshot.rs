//! Epoch-versioned snapshot store: the read/write decoupling at the heart
//! of the service.
//!
//! Readers [`pin`](SnapshotStore::pin) the current [`Epoch`] — an `Arc` to
//! an immutable [`GraphSnapshot`] plus the [`AppliedBatch`] delta that
//! produced it — and compute against it for as long as they like. The
//! single writer applies update batches to its private [`OverlayGraph`](gp_graph::OverlayGraph)
//! master copy off the read path, freezes the result (O(patched vertices),
//! the base CSR is `Arc`-shared), and [`publish`](SnapshotStore::publish)es
//! the new epoch with one pointer swap. Compaction of the master overlay
//! also happens off the read path and replaces the base `Arc`, so pinned
//! snapshots keep reading the base they were frozen against — no epoch
//! ever mutates after publish.
//!
//! A bounded history of recent epochs is retained so offline verification
//! (the load generator's golden cross-check) can recompute on exactly the
//! epoch a query was served from.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, RwLock};

use gp_graph::{AppliedBatch, GraphSnapshot};

/// One published, immutable version of the graph.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Monotonically increasing epoch number; the base graph is epoch 0.
    pub number: u64,
    /// The epoch this one was derived from (`number - 1` in the current
    /// single-writer design; epoch 0 is its own parent).
    pub parent: u64,
    /// Immutable adjacency at this epoch.
    pub graph: GraphSnapshot,
    /// The net edge diff `parent -> this`, when this epoch was produced by
    /// one update batch — exactly what
    /// [`incremental_seeds`](gp_algorithms::incremental_seeds) needs to
    /// warm-start from parent-epoch state. `None` for epoch 0.
    pub delta: Option<AppliedBatch>,
}

/// Atomically publishable store of the current [`Epoch`] plus a bounded
/// history of recent ones.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Epoch>>,
    history: Mutex<VecDeque<Arc<Epoch>>>,
    retain: usize,
}

impl SnapshotStore {
    /// Creates the store at epoch 0 with the given base snapshot,
    /// retaining up to `retain` recent epochs (minimum 1) for
    /// [`epoch`](SnapshotStore::epoch) lookups.
    pub fn new(base: GraphSnapshot, retain: usize) -> Self {
        let epoch0 = Arc::new(Epoch {
            number: 0,
            parent: 0,
            graph: base,
            delta: None,
        });
        let mut history = VecDeque::new();
        history.push_back(Arc::clone(&epoch0));
        SnapshotStore {
            current: RwLock::new(epoch0),
            history: Mutex::new(history),
            retain: retain.max(1),
        }
    }

    /// Pins the current epoch: a cheap `Arc` clone that stays valid (and
    /// immutable) forever, however many epochs are published after it.
    pub fn pin(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Number of the current epoch.
    pub fn current_number(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").number
    }

    /// Publishes the next epoch derived from the current one by `delta`,
    /// returning its number. Single pointer swap on the read path.
    pub fn publish(&self, graph: GraphSnapshot, delta: AppliedBatch) -> u64 {
        let mut cur = self.current.write().expect("snapshot lock poisoned");
        let next = Arc::new(Epoch {
            number: cur.number + 1,
            parent: cur.number,
            graph,
            delta: Some(delta),
        });
        let mut history = self.history.lock().expect("history lock poisoned");
        history.push_back(Arc::clone(&next));
        while history.len() > self.retain {
            history.pop_front();
        }
        let number = next.number;
        *cur = next;
        number
    }

    /// Looks up a recent epoch by number, if still retained.
    pub fn epoch(&self, number: u64) -> Option<Arc<Epoch>> {
        let history = self.history.lock().expect("history lock poisoned");
        history.iter().find(|e| e.number == number).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::{erdos_renyi, WeightMode};
    use gp_graph::{GraphView, OverlayGraph, VertexId};

    #[test]
    fn publish_advances_and_history_is_bounded() {
        let g = erdos_renyi(32, 128, WeightMode::Unweighted, 3);
        let mut overlay = OverlayGraph::new(g);
        let store = SnapshotStore::new(overlay.freeze(), 3);
        assert_eq!(store.current_number(), 0);
        for i in 0..5u32 {
            let applied = overlay.apply(&[gp_graph::EdgeUpdate::Insert {
                src: VertexId::new(i),
                dst: VertexId::new(31 - i),
                weight: 1.0,
            }]);
            let n = store.publish(overlay.freeze(), applied);
            assert_eq!(n, u64::from(i) + 1);
        }
        assert_eq!(store.current_number(), 5);
        assert!(store.epoch(5).is_some());
        assert!(store.epoch(3).is_some());
        assert!(store.epoch(1).is_none(), "history must be bounded");
        assert_eq!(store.epoch(4).unwrap().parent, 3);
    }

    #[test]
    fn pinned_epoch_outlives_publishes() {
        let g = erdos_renyi(32, 128, WeightMode::Unweighted, 7);
        let mut overlay = OverlayGraph::new(g);
        let store = SnapshotStore::new(overlay.freeze(), 1);
        let pinned = store.pin();
        let edges_before = pinned.graph.num_edges();
        let (s, d) = (0..32u32)
            .flat_map(|s| (0..32u32).map(move |d| (s, d)))
            .find(|&(s, d)| s != d && !overlay.contains_edge(VertexId::new(s), VertexId::new(d)))
            .expect("sparse graph has absent edges");
        let applied = overlay.apply(&[gp_graph::EdgeUpdate::Insert {
            src: VertexId::new(s),
            dst: VertexId::new(d),
            weight: 1.0,
        }]);
        store.publish(overlay.freeze(), applied);
        assert_eq!(pinned.number, 0);
        assert_eq!(pinned.graph.num_edges(), edges_before);
        assert_eq!(store.pin().graph.num_edges(), edges_before + 1);
    }
}
