//! `gp-serve`: an epoch-versioned, multi-tenant graph query service over
//! the turbo backend.
//!
//! This crate is the serving leg of the north star: a long-lived process
//! that answers interactive graph queries (PageRank reads, connected
//! components, SSSP/BFS/SSWP point-to-point) while concurrently ingesting
//! edge-update batches, with the [`gp_turbo`] executor — the only backend
//! fast enough for traffic — doing all recomputation.
//!
//! # Architecture (DESIGN.md §5f)
//!
//! * **Epoch-versioned snapshots** ([`snapshot`]): a single writer thread
//!   owns the mutable [`OverlayGraph`] master,
//!   applies update batches off the read path, and publishes immutable
//!   [`GraphSnapshot`](gp_graph::GraphSnapshot)s through the
//!   [`SnapshotStore`]. Readers pin an epoch with one `Arc` clone; no
//!   epoch ever mutates after publish; compaction swaps the base CSR
//!   `Arc` without disturbing pinned readers.
//! * **Batched query execution** ([`executor`]): a pool of
//!   [`ServeConfig::executors`] executor threads, one per admission
//!   *lane*, drains admitted queries in windows and groups them by
//!   class. Queries route to lanes by `(class, source)` hash, so every
//!   query for a given path source lands on the same executor and its
//!   per-source column cache stays thread-local (no cross-thread cache
//!   coherence). PageRank/CC per-epoch runs are memoized once in shared,
//!   mutex-guarded caches (warm-started through
//!   [`incremental_seeds`](gp_algorithms::incremental_seeds) +
//!   [`run_turbo_seeded`](gp_turbo::run_turbo_seeded) when the epoch
//!   advanced by one overlay delta) and the projected vectors are
//!   `Arc`-shared to every lane. Path queries fuse through [`FusedPaths`]
//!   multi-source frontier fusion — up to [`LANES`] same-class sources
//!   per traversal — and cached columns warm-start across epochs by
//!   replaying the overlay deltas incrementally. All turbo runs use
//!   [`ServeConfig::turbo_shards`] engine shards; sharded runs are
//!   bit-identical to single-shard runs, so responses stay golden-exact
//!   regardless of the shard count.
//! * **Admission control** ([`admission`]): bounded per-tenant queues, a
//!   global overload ceiling, typed [`Rejection`]s, and graceful
//!   degradation — when the update pipeline lags behind
//!   [`ServeConfig::degrade_lag`] batches, reads are served from the last
//!   computed epoch (flagged [`QueryResponse::degraded`]) instead of
//!   stalling on recomputes.
//! * **Front ends**: the in-process [`ServeHandle`] / [`ServeClient`]
//!   API here, and a line-oriented TCP protocol in [`net`].
//!
//! Everything is std-only — threads and channels, no async runtime —
//! matching the workspace's hermetic build.
//!
//! # Quickstart
//!
//! ```
//! use gp_graph::generators::{rmat, RmatConfig, WeightMode};
//! use gp_graph::{EdgeUpdate, VertexId};
//! use gp_serve::{Query, ServeConfig, Server};
//!
//! let g = rmat(
//!     &RmatConfig::graph500(256, 2_048).with_weights(WeightMode::Uniform(1.0, 9.0)),
//!     7,
//! );
//! let handle = Server::start(g, ServeConfig::default());
//! let client = handle.client();
//!
//! let r = client
//!     .query(0, Query::Sssp { src: VertexId::new(0), dst: VertexId::new(9) })
//!     .expect("admitted");
//! assert_eq!(r.epoch, 0);
//!
//! handle.updater().submit(vec![EdgeUpdate::Insert {
//!     src: VertexId::new(0),
//!     dst: VertexId::new(9),
//!     weight: 1.0,
//! }]);
//! let stats = handle.shutdown();
//! assert_eq!(stats.served, 1);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod executor;
pub mod fused;
pub mod net;
pub mod snapshot;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gp_graph::{CsrGraph, EdgeUpdate, OverlayGraph, VertexId};
use gp_turbo::TurboConfig;

pub use admission::{AdmissionQueues, Rejection};
pub use fused::{FusedPaths, PathKind, LANES};
pub use snapshot::{Epoch, SnapshotStore};

/// One graph query. Vertex ids are validated against the graph at
/// submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Read vertex `v`'s PageRank (computed with
    /// [`PageRankDelta`](gp_algorithms::PageRankDelta)).
    PageRank {
        /// Vertex whose rank is read.
        v: VertexId,
    },
    /// Read vertex `v`'s connected-component label.
    Components {
        /// Vertex whose component label is read.
        v: VertexId,
    },
    /// Shortest-path distance `src -> dst` (∞ when unreachable).
    Sssp {
        /// Path source.
        src: VertexId,
        /// Path destination.
        dst: VertexId,
    },
    /// Hop distance `src -> dst` (∞ when unreachable).
    Bfs {
        /// Path source.
        src: VertexId,
        /// Path destination.
        dst: VertexId,
    },
    /// Widest-path bottleneck width `src -> dst` (0 when unreachable).
    Sswp {
        /// Path source.
        src: VertexId,
        /// Path destination.
        dst: VertexId,
    },
}

/// The query classes the service batches by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// PageRank value reads.
    PageRank,
    /// Connected-component label reads.
    Components,
    /// Shortest-path queries.
    Sssp,
    /// Hop-count queries.
    Bfs,
    /// Widest-path queries.
    Sswp,
}

impl QueryClass {
    /// All classes, in reporting order.
    pub const ALL: [QueryClass; 5] = [
        QueryClass::PageRank,
        QueryClass::Components,
        QueryClass::Sssp,
        QueryClass::Bfs,
        QueryClass::Sswp,
    ];

    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::PageRank => "pagerank",
            QueryClass::Components => "cc",
            QueryClass::Sssp => "sssp",
            QueryClass::Bfs => "bfs",
            QueryClass::Sswp => "sswp",
        }
    }

    /// Parses a wire/report name.
    pub fn parse(s: &str) -> Option<QueryClass> {
        QueryClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl Query {
    /// The class this query batches under.
    pub fn class(&self) -> QueryClass {
        match self {
            Query::PageRank { .. } => QueryClass::PageRank,
            Query::Components { .. } => QueryClass::Components,
            Query::Sssp { .. } => QueryClass::Sssp,
            Query::Bfs { .. } => QueryClass::Bfs,
            Query::Sswp { .. } => QueryClass::Sswp,
        }
    }

    fn validate(&self, num_vertices: usize) -> Result<(), Rejection> {
        let check = |v: VertexId| {
            if v.index() < num_vertices {
                Ok(())
            } else {
                Err(Rejection::BadQuery(format!(
                    "vertex {v} out of range for {num_vertices} vertices"
                )))
            }
        };
        match *self {
            Query::PageRank { v } | Query::Components { v } => check(v),
            Query::Sssp { src, dst } | Query::Bfs { src, dst } | Query::Sswp { src, dst } => {
                check(src).and_then(|()| check(dst))
            }
        }
    }
}

/// A served query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResponse {
    /// Epoch of the data this answer was computed on. Under degradation
    /// this may be older than the epoch current at serve time — it is
    /// always the epoch the value is *exact* for.
    pub epoch: u64,
    /// The queried value (PageRank mass, component label, distance, hop
    /// count, or width; ∞ / 0 for unreachable path queries).
    pub value: f64,
    /// Whether this answer was served from cached last-epoch results
    /// because the update pipeline had fallen behind.
    pub degraded: bool,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registered tenant names; queries carry a tenant id (index).
    pub tenants: Vec<String>,
    /// Turbo executor geometry for all recomputation runs.
    /// `turbo.shards` is overwritten from [`ServeConfig::turbo_shards`]
    /// at startup.
    pub turbo: TurboConfig,
    /// Executor threads (= admission lanes). Queries route to lanes by
    /// `(class, source)` hash so per-source path caches stay
    /// thread-local. Minimum 1.
    pub executors: usize,
    /// Vertex shards for every turbo run the service performs. Sharded
    /// runs are bit-identical to single-shard runs. Minimum 1.
    pub turbo_shards: usize,
    /// Per-tenant admitted-query bound ([`Rejection::QueueFull`] beyond).
    pub queue_capacity: usize,
    /// Global admitted-query bound ([`Rejection::Overloaded`] beyond).
    pub global_capacity: usize,
    /// Most queries one executor sweep serves (the batching window's size
    /// bound; same-class queries within a sweep share runs).
    pub max_batch: usize,
    /// How long an idle executor waits for queries to batch up.
    pub batch_window: Duration,
    /// Bounded depth of the update-batch queue; a full queue is
    /// backpressure on the updater.
    pub update_queue: usize,
    /// Update batches pending beyond which reads degrade to cached
    /// last-epoch results instead of recomputing — the service sheds
    /// *freshness*, not availability, when writes outpace it.
    pub degrade_lag: usize,
    /// Whole-graph (PageRank/CC) refresh stride under epoch churn: a
    /// cached vector is reused — flagged [`QueryResponse::degraded`] and
    /// named exactly at its own epoch — until the sweep's pinned epoch is
    /// at least this many epochs ahead, then re-converged. Whole-graph
    /// convergence costs seconds per epoch on large graphs while path
    /// queries (which always chase the head) cost microseconds, so
    /// chasing every published epoch lets write churn starve read
    /// throughput; this bounds that staleness at a fixed number of
    /// epochs instead. `1` chases every epoch. Minimum 1. The default
    /// matches the longest path-column replay chain (`MAX_WARM_CHAIN`),
    /// so one whole-graph refresh spans the same epoch window as the
    /// deepest path replay.
    pub refresh_lag: usize,
    /// Overlay compaction threshold (pool fraction of base edges), applied
    /// off the read path after each publish.
    pub compact_fraction: f64,
    /// Recent epochs retained for [`SnapshotStore::epoch`] lookups
    /// (offline verification recomputes on exactly the served epoch).
    pub retain_epochs: usize,
    /// Consecutive warm starts of a PageRank/CC cache before a forced
    /// cold run, bounding incremental drift accumulation.
    pub warm_limit: u32,
    /// Per-source path-result cache entries before the cache is cleared.
    pub path_cache_sources: usize,
    /// PageRank damping factor.
    pub pagerank_damping: f64,
    /// PageRank convergence threshold (also sets its comparison
    /// tolerance).
    pub pagerank_threshold: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: vec!["default".to_string()],
            turbo: TurboConfig::default(),
            executors: 1,
            turbo_shards: 1,
            queue_capacity: 1_024,
            global_capacity: 8_192,
            max_batch: 256,
            batch_window: Duration::from_micros(200),
            update_queue: 8,
            degrade_lag: 4,
            refresh_lag: 8,
            compact_fraction: 0.25,
            retain_epochs: 64,
            warm_limit: 16,
            path_cache_sources: 128,
            pagerank_damping: 0.85,
            pagerank_threshold: 1e-9,
        }
    }
}

/// Monotone service counters, updated by the executor/writer threads and
/// readable at any time via [`ServeStats::snapshot`].
#[derive(Debug, Default)]
pub struct ServeStats {
    served: [AtomicU64; 5],
    degraded: AtomicU64,
    rejected: AtomicU64,
    epochs_published: AtomicU64,
    update_batches: AtomicU64,
    warm_starts: AtomicU64,
    cold_runs: AtomicU64,
    fused_runs: AtomicU64,
    path_cache_hits: AtomicU64,
    path_warm_starts: AtomicU64,
    sweeps: AtomicU64,
}

/// Plain-value copy of [`ServeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries served, by [`QueryClass::ALL`] order.
    pub served_by_class: [u64; 5],
    /// Total queries served.
    pub served: u64,
    /// Served answers flagged degraded (stale epoch).
    pub degraded: u64,
    /// Queries shed by admission control (all [`Rejection`] kinds).
    pub rejected: u64,
    /// Epochs published by the writer.
    pub epochs_published: u64,
    /// Update batches applied by the writer.
    pub update_batches: u64,
    /// PageRank/CC re-convergences warm-started from the parent epoch.
    pub warm_starts: u64,
    /// PageRank/CC cold (from-scratch) runs.
    pub cold_runs: u64,
    /// Fused multi-source path traversals executed.
    pub fused_runs: u64,
    /// Path queries answered from the per-source result cache.
    pub path_cache_hits: u64,
    /// Cached path columns re-converged to a newer epoch by replaying
    /// overlay deltas incrementally instead of a cold fused traversal.
    pub path_warm_starts: u64,
    /// Executor batching sweeps that served at least one query.
    pub sweeps: u64,
}

impl ServeStats {
    pub(crate) fn count_served(&self, class: QueryClass, degraded: bool) {
        let i = QueryClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class");
        self.served[i].fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let served_by_class: [u64; 5] =
            std::array::from_fn(|i| self.served[i].load(Ordering::Relaxed));
        StatsSnapshot {
            served_by_class,
            served: served_by_class.iter().sum(),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            update_batches: self.update_batches.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            cold_runs: self.cold_runs.load(Ordering::Relaxed),
            fused_runs: self.fused_runs.load(Ordering::Relaxed),
            path_cache_hits: self.path_cache_hits.load(Ordering::Relaxed),
            path_warm_starts: self.path_warm_starts.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
        }
    }
}

/// One admitted query in flight: what the executor answers.
pub(crate) struct Request {
    pub(crate) query: Query,
    pub(crate) reply: mpsc::Sender<QueryResponse>,
}

/// State shared by the handle, clients, and the executor thread.
pub(crate) struct Shared {
    pub(crate) queues: AdmissionQueues<Request>,
    pub(crate) store: SnapshotStore,
    pub(crate) stats: ServeStats,
    /// Whole-graph PageRank/CC caches, computed once per epoch under a
    /// mutex and `Arc`-shared to every executor lane.
    pub(crate) caches: executor::SharedCaches,
    /// Update batches submitted but not yet published — the freshness lag
    /// that triggers degradation.
    pub(crate) update_lag: AtomicUsize,
    /// Set by [`ServeHandle::shutdown`]; the writer exits once this is set
    /// and every submitted batch has been applied (it cannot rely on
    /// channel disconnection alone — long-lived front-end threads may
    /// hold [`Updater`] clones).
    pub(crate) shutting_down: AtomicBool,
    pub(crate) num_vertices: usize,
    pub(crate) config: ServeConfig,
}

/// The in-process service: owns the executor and writer threads.
///
/// Dropping the handle without calling [`shutdown`](ServeHandle::shutdown)
/// detaches the threads (they exit once every client and updater clone is
/// gone); tests and the bench always shut down explicitly.
pub struct Server;

impl Server {
    /// Builds the service over `base` and starts its threads: epoch 0 is
    /// the frozen base graph, the executor begins draining queries, the
    /// writer begins consuming update batches.
    pub fn start(base: CsrGraph, config: ServeConfig) -> ServeHandle {
        let mut config = config;
        config.executors = config.executors.max(1);
        config.turbo_shards = config.turbo_shards.max(1);
        config.turbo.shards = config.turbo_shards;
        config.refresh_lag = config.refresh_lag.max(1);
        let num_vertices = base.num_vertices();
        let mut overlay = OverlayGraph::new(base);
        let store = SnapshotStore::new(overlay.freeze(), config.retain_epochs);
        let shared = Arc::new(Shared {
            queues: AdmissionQueues::new(
                config.tenants.clone(),
                config.queue_capacity,
                config.global_capacity,
                config.executors,
            ),
            store,
            stats: ServeStats::default(),
            caches: executor::SharedCaches::new(&config),
            update_lag: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            num_vertices,
            config: config.clone(),
        });

        let (update_tx, update_rx) = mpsc::sync_channel::<Vec<EdgeUpdate>>(config.update_queue);

        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gp-serve-writer".into())
                .spawn(move || loop {
                    match update_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(updates) => {
                            let applied = overlay.apply(&updates);
                            if !applied.is_empty() {
                                ServeStats::count(&shared.stats.epochs_published);
                                shared.store.publish(overlay.freeze(), applied);
                                // Compaction runs after publish, off the
                                // read path; pinned snapshots keep their
                                // base Arc.
                                overlay.maybe_compact(shared.config.compact_fraction);
                            }
                            ServeStats::count(&shared.stats.update_batches);
                            shared.update_lag.fetch_sub(1, Ordering::Relaxed);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shared.shutting_down.load(Ordering::Relaxed)
                                && shared.update_lag.load(Ordering::Relaxed) == 0
                            {
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                })
                .expect("spawn writer thread")
        };

        let executors = (0..config.executors)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gp-serve-executor-{lane}"))
                    .spawn(move || executor::run(&shared, lane))
                    .expect("spawn executor thread")
            })
            .collect();

        ServeHandle {
            shared,
            update_tx,
            executors,
            writer: Some(writer),
        }
    }
}

/// Owner handle of a running service.
pub struct ServeHandle {
    shared: Arc<Shared>,
    update_tx: SyncSender<Vec<EdgeUpdate>>,
    executors: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// A cheap, clonable query client.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cheap, clonable update submitter.
    pub fn updater(&self) -> Updater {
        Updater {
            shared: Arc::clone(&self.shared),
            tx: self.update_tx.clone(),
        }
    }

    /// The snapshot store — pin or look up epochs (offline verification
    /// recomputes on exactly the epoch a response named).
    pub fn store(&self) -> &SnapshotStore {
        &self.shared.store
    }

    /// Current service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops admission, drains every already-admitted query, applies every
    /// already-submitted update batch, joins the threads, and returns the
    /// final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.queues.close();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        // The writer drains every batch submitted before this flag flips,
        // then exits on its next timeout tick (it cannot wait for channel
        // disconnection: front-end threads may still hold Updater clones).
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        drop(self.update_tx);
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        self.shared.stats.snapshot()
    }
}

/// Routes a query to an executor lane. All whole-graph reads of a class
/// share a lane; path queries route by `(class, source)` so one lane owns
/// every query against a given source column and its cache entry is
/// touched by exactly one thread.
pub(crate) fn lane_of(query: &Query, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let (class, src) = match *query {
        Query::PageRank { .. } => (0u64, 0u32),
        Query::Components { .. } => (1, 0),
        Query::Sssp { src, .. } => (2, src.get()),
        Query::Bfs { src, .. } => (3, src.get()),
        Query::Sswp { src, .. } => (4, src.get()),
    };
    // Fibonacci-style multiply hash; deterministic across runs.
    let mut h = class
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(src).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    h ^= h >> 31;
    (h % lanes as u64) as usize
}

/// Clonable query-side client of a running service.
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
}

impl ServeClient {
    /// Submits `query` for tenant id `tenant` and blocks for the answer.
    ///
    /// # Errors
    ///
    /// A typed [`Rejection`] when admission sheds the query (bad query,
    /// unknown tenant, per-tenant or global backpressure, shutdown).
    pub fn query(&self, tenant: usize, query: Query) -> Result<QueryResponse, Rejection> {
        let rx = self.query_async(tenant, query)?;
        rx.recv().map_err(|_| Rejection::ShuttingDown)
    }

    /// Submits `query` without blocking; the receiver yields the answer
    /// when the executor serves it.
    ///
    /// # Errors
    ///
    /// A typed [`Rejection`] when admission sheds the query.
    pub fn query_async(
        &self,
        tenant: usize,
        query: Query,
    ) -> Result<mpsc::Receiver<QueryResponse>, Rejection> {
        if let Err(r) = query.validate(self.shared.num_vertices) {
            ServeStats::count(&self.shared.stats.rejected);
            return Err(r);
        }
        let (reply, rx) = mpsc::channel();
        let lane = lane_of(&query, self.shared.queues.lanes());
        match self
            .shared
            .queues
            .submit(tenant, lane, Request { query, reply })
        {
            Ok(()) => Ok(rx),
            Err(r) => {
                ServeStats::count(&self.shared.stats.rejected);
                Err(r)
            }
        }
    }

    /// Resolves a tenant name to the id [`query`](ServeClient::query)
    /// takes.
    pub fn tenant_id(&self, name: &str) -> Option<usize> {
        self.shared.queues.tenant_id(name)
    }

    /// Vertex count of the served graph (constant across epochs).
    pub fn num_vertices(&self) -> usize {
        self.shared.num_vertices
    }

    /// Current epoch number (advances as the writer publishes).
    pub fn current_epoch(&self) -> u64 {
        self.shared.store.current_number()
    }
}

/// Clonable update-side client: submits edge-update batches to the writer.
#[derive(Clone)]
pub struct Updater {
    shared: Arc<Shared>,
    tx: SyncSender<Vec<EdgeUpdate>>,
}

impl Updater {
    /// Submits a batch, blocking while the bounded update queue is full —
    /// the writer's backpressure on a too-fast updater. Returns `false`
    /// if the writer is gone (post-shutdown).
    pub fn submit(&self, updates: Vec<EdgeUpdate>) -> bool {
        match self.tx.send(updates) {
            Ok(()) => {
                self.shared.update_lag.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Non-blocking submit.
    ///
    /// # Errors
    ///
    /// [`Rejection::Overloaded`] when the update queue is full,
    /// [`Rejection::ShuttingDown`] when the writer is gone.
    pub fn try_submit(&self, updates: Vec<EdgeUpdate>) -> Result<(), Rejection> {
        match self.tx.try_send(updates) {
            Ok(()) => {
                self.shared.update_lag.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(Rejection::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(Rejection::ShuttingDown),
        }
    }

    /// Update batches submitted but not yet published.
    pub fn lag(&self) -> usize {
        self.shared.update_lag.load(Ordering::Relaxed)
    }

    /// Current epoch number.
    pub fn current_epoch(&self) -> u64 {
        self.shared.store.current_number()
    }
}
