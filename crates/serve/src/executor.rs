//! The query executor: windowed batching, shared runs, warm starts, and
//! degradation.
//!
//! One executor thread drains admitted queries in sweeps of up to
//! [`max_batch`](crate::ServeConfig::max_batch) (waiting up to
//! [`batch_window`](crate::ServeConfig::batch_window) when idle), pins the
//! current epoch once per sweep, and serves every query in the sweep from
//! that pin:
//!
//! * **PageRank / CC** are whole-graph computations memoized per epoch.
//!   The first read after an epoch advance re-converges the cached state —
//!   warm-started via [`incremental_seeds`] + [`run_turbo_seeded`] when
//!   the cache sits exactly one overlay delta behind (the common case
//!   under streaming updates), cold otherwise, and cold every
//!   [`warm_limit`](crate::ServeConfig::warm_limit) warm starts to bound
//!   incremental drift. Every read within the epoch is then an array
//!   index.
//! * **Path queries** (SSSP/BFS/SSWP) batch by class: distinct sources in
//!   the sweep fuse into [`FusedPaths`] runs of up to [`LANES`] lanes —
//!   one traversal serving up to [`LANES`] single-source problems — and
//!   each source's full result column is cached for the epoch, so
//!   repeated sources (hot entities in skewed traffic) are array reads.
//! * **Degradation**: when the writer lags by
//!   [`degrade_lag`](crate::ServeConfig::degrade_lag) batches or more,
//!   the sweep serves whatever epoch its caches already hold — flagged
//!   [`degraded`](crate::QueryResponse::degraded), and still *exact for
//!   the epoch the response names* — instead of recomputing toward a
//!   current epoch the writer is about to obsolete anyway.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use gp_algorithms::engine::initial_state;
use gp_algorithms::{incremental_seeds, ConnectedComponents, IncrementalAlgorithm, PageRankDelta};
use gp_graph::{GraphView, VertexId};
use gp_turbo::run_turbo_seeded;

use crate::fused::{FusedPaths, PathKind, LANES};
use crate::snapshot::Epoch;
use crate::{Query, QueryClass, QueryResponse, Request, ServeStats, Shared};

/// Executor thread body: sweep until the queues are closed and drained.
pub(crate) fn run(shared: &Shared) {
    let mut exec = Executor {
        shared,
        pagerank: ClassCache::new(PageRankDelta::new(
            shared.config.pagerank_damping,
            shared.config.pagerank_threshold,
        )),
        components: ClassCache::new(ConnectedComponents::new()),
        path_cache: HashMap::new(),
    };
    loop {
        let batch = shared
            .queues
            .drain(shared.config.max_batch, shared.config.batch_window);
        if batch.is_empty() {
            if shared.queues.is_finished() {
                break;
            }
            continue;
        }
        exec.serve_sweep(batch);
    }
}

/// Per-epoch memoized whole-graph state for one algorithm.
struct ClassCache<A: IncrementalAlgorithm> {
    algo: A,
    /// Epoch `values` is converged at; `None` before the first run.
    epoch: Option<u64>,
    values: Vec<A::Value>,
    projected: Vec<f64>,
    warm_streak: u32,
}

impl<A: IncrementalAlgorithm> ClassCache<A> {
    fn new(algo: A) -> Self {
        ClassCache {
            algo,
            epoch: None,
            values: Vec::new(),
            projected: Vec::new(),
            warm_streak: 0,
        }
    }

    /// Makes `projected` valid for some epoch and returns
    /// `(epoch_served, degraded)`: the pinned epoch normally, the stale
    /// cached epoch under degradation.
    fn ensure(&mut self, shared: &Shared, epoch: &Epoch, degraded_mode: bool) -> (u64, bool) {
        if self.epoch == Some(epoch.number) {
            return (epoch.number, false);
        }
        if degraded_mode {
            if let Some(stale) = self.epoch {
                return (stale, true);
            }
        }
        let warm = match (self.epoch, &epoch.delta) {
            (Some(at), Some(delta))
                if at == epoch.parent
                    && self.warm_streak < shared.config.warm_limit
                    && self.values.len() == epoch.graph.num_vertices() =>
            {
                let plan = incremental_seeds(&self.algo, &epoch.graph, &mut self.values, delta);
                run_turbo_seeded(
                    &self.algo,
                    &epoch.graph,
                    &mut self.values,
                    &plan.seeds,
                    &shared.config.turbo,
                );
                true
            }
            _ => false,
        };
        if warm {
            self.warm_streak += 1;
            ServeStats::count(&shared.stats.warm_starts);
        } else {
            let (mut values, seeds) = initial_state(&self.algo, &epoch.graph);
            run_turbo_seeded(
                &self.algo,
                &epoch.graph,
                &mut values,
                &seeds,
                &shared.config.turbo,
            );
            self.values = values;
            self.warm_streak = 0;
            ServeStats::count(&shared.stats.cold_runs);
        }
        self.projected = self
            .values
            .iter()
            .map(|&v| self.algo.value_to_f64(v))
            .collect();
        self.epoch = Some(epoch.number);
        (epoch.number, false)
    }
}

/// One cached multi-source lane column: the epoch it was computed at and
/// the per-destination results.
type CachedColumn = (u64, Arc<Vec<f64>>);

struct Executor<'a> {
    shared: &'a Shared,
    pagerank: ClassCache<PageRankDelta>,
    components: ClassCache<ConnectedComponents>,
    /// `(kind, source) -> (epoch, per-destination results)`.
    path_cache: HashMap<(PathKind, u32), CachedColumn>,
}

impl Executor<'_> {
    fn serve_sweep(&mut self, batch: Vec<Request>) {
        ServeStats::count(&self.shared.stats.sweeps);
        let epoch = self.shared.store.pin();
        let degraded_mode =
            self.shared.update_lag.load(Ordering::Relaxed) >= self.shared.config.degrade_lag;

        let mut value_reads: Vec<(QueryClass, u32, std::sync::mpsc::Sender<QueryResponse>)> =
            Vec::new();
        let mut paths: HashMap<PathKind, Vec<(u32, u32, std::sync::mpsc::Sender<QueryResponse>)>> =
            HashMap::new();
        for req in batch {
            match req.query {
                Query::PageRank { v } => {
                    value_reads.push((QueryClass::PageRank, v.get(), req.reply))
                }
                Query::Components { v } => {
                    value_reads.push((QueryClass::Components, v.get(), req.reply));
                }
                Query::Sssp { src, dst } => {
                    paths
                        .entry(PathKind::Sssp)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
                Query::Bfs { src, dst } => {
                    paths
                        .entry(PathKind::Bfs)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
                Query::Sswp { src, dst } => {
                    paths
                        .entry(PathKind::Sswp)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
            }
        }

        // Whole-graph classes: one ensure per class per sweep, then every
        // read in the sweep shares it.
        let need_pr = value_reads.iter().any(|(c, ..)| *c == QueryClass::PageRank);
        let need_cc = value_reads
            .iter()
            .any(|(c, ..)| *c == QueryClass::Components);
        let pr_at = need_pr.then(|| self.pagerank.ensure(self.shared, &epoch, degraded_mode));
        let cc_at = need_cc.then(|| self.components.ensure(self.shared, &epoch, degraded_mode));
        for (class, v, reply) in value_reads {
            let ((served_epoch, degraded), projected) = match class {
                QueryClass::PageRank => (pr_at.expect("ensured"), &self.pagerank.projected),
                QueryClass::Components => (cc_at.expect("ensured"), &self.components.projected),
                _ => unreachable!("value_reads holds only whole-graph classes"),
            };
            let _ = reply.send(QueryResponse {
                epoch: served_epoch,
                value: projected[v as usize],
                degraded,
            });
            self.shared.stats.count_served(class, degraded);
        }

        for kind in [PathKind::Sssp, PathKind::Bfs, PathKind::Sswp] {
            if let Some(reqs) = paths.remove(&kind) {
                self.serve_paths(kind, reqs, &epoch, degraded_mode);
            }
        }
    }

    fn serve_paths(
        &mut self,
        kind: PathKind,
        reqs: Vec<(u32, u32, std::sync::mpsc::Sender<QueryResponse>)>,
        epoch: &Epoch,
        degraded_mode: bool,
    ) {
        // Classify sources: usable cache entry (current epoch, or any
        // epoch under degradation) vs. needs computing. BTreeSet dedups
        // and fixes lane order deterministically.
        let mut needed: BTreeSet<u32> = BTreeSet::new();
        for &(src, ..) in &reqs {
            match self.path_cache.get(&(kind, src)) {
                Some(&(at, _)) if at == epoch.number => {
                    ServeStats::count(&self.shared.stats.path_cache_hits);
                }
                Some(_) if degraded_mode => {
                    ServeStats::count(&self.shared.stats.path_cache_hits);
                }
                _ => {
                    needed.insert(src);
                }
            }
        }

        // Fuse missing sources into shared traversals, LANES at a time.
        let needed: Vec<u32> = needed.into_iter().collect();
        for chunk in needed.chunks(LANES) {
            let sources: Vec<VertexId> = chunk.iter().map(|&s| VertexId::new(s)).collect();
            let fused = FusedPaths::new(kind, &sources);
            let (mut values, seeds) = initial_state(&fused, &epoch.graph);
            run_turbo_seeded(
                &fused,
                &epoch.graph,
                &mut values,
                &seeds,
                &self.shared.config.turbo,
            );
            ServeStats::count(&self.shared.stats.fused_runs);
            for (lane, &src) in chunk.iter().enumerate() {
                let column: Vec<f64> = values.iter().map(|v| v[lane]).collect();
                self.path_cache
                    .insert((kind, src), (epoch.number, Arc::new(column)));
            }
        }

        let class = match kind {
            PathKind::Sssp => QueryClass::Sssp,
            PathKind::Bfs => QueryClass::Bfs,
            PathKind::Sswp => QueryClass::Sswp,
        };
        for (src, dst, reply) in reqs {
            let (at, column) = self
                .path_cache
                .get(&(kind, src))
                .expect("every source is cached or was just computed");
            let degraded = *at != epoch.number;
            let _ = reply.send(QueryResponse {
                epoch: *at,
                value: column[dst as usize],
                degraded,
            });
            self.shared.stats.count_served(class, degraded);
        }

        // Crude bound on cache memory: a full reset once over capacity.
        if self.path_cache.len() > self.shared.config.path_cache_sources {
            self.path_cache.clear();
        }
    }
}
