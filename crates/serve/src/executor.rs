//! The query executors: windowed batching, shared runs, warm starts, and
//! degradation, fanned out across a lane-sharded thread pool.
//!
//! [`ServeConfig::executors`](crate::ServeConfig::executors) executor
//! threads each own one admission lane. A thread drains its lane in
//! sweeps of up to [`max_batch`](crate::ServeConfig::max_batch) (waiting
//! up to [`batch_window`](crate::ServeConfig::batch_window) when idle),
//! pins the current epoch once per sweep, and serves every query in the
//! sweep from that pin:
//!
//! * **PageRank / CC** are whole-graph computations memoized per epoch in
//!   `SharedCaches` — one mutex-guarded cache per class, shared by all
//!   lanes so an epoch is converged exactly once no matter which lane's
//!   read triggers it. Re-convergence is warm-started via
//!   [`incremental_seeds`] + [`run_turbo_seeded`] when the cache sits
//!   exactly one overlay delta behind (the common case under streaming
//!   updates), cold otherwise, and cold every
//!   [`warm_limit`](crate::ServeConfig::warm_limit) warm starts to bound
//!   incremental drift. The projected vector is `Arc`-shared, so a lane
//!   holds the lock only for the ensure, never while replying. If another
//!   lane already advanced the cache *past* this sweep's pin, the cached
//!   newer epoch is served as-is (named exactly, not degraded) — epochs
//!   only move forward.
//! * **Path queries** (SSSP/BFS/SSWP) batch by class. The client routes
//!   them by `(class, source)` hash, so this lane owns every query
//!   against the sources it sees and the per-source column cache is
//!   plain thread-local state. Columns cached at an older epoch
//!   **warm-start across epochs**: the lane replays each intervening
//!   overlay delta with [`incremental_seeds`] + [`run_turbo_seeded`] on
//!   the typed column — bit-identical to a cold run, because monotone
//!   incremental re-convergence is exact and fused lanes match
//!   single-source runs — instead of a from-scratch fused traversal.
//!   Only sources with no usable cache entry (or a delta chain longer
//!   than `MAX_WARM_CHAIN`) fuse into [`FusedPaths`] runs of up to
//!   [`LANES`] lanes.
//! * **Degradation & amortized refresh**: when the writer lags by
//!   [`degrade_lag`](crate::ServeConfig::degrade_lag) batches or more,
//!   the sweep serves whatever epoch its caches already hold — flagged
//!   [`degraded`](crate::QueryResponse::degraded), and still *exact for
//!   the epoch the response names* — instead of recomputing toward a
//!   current epoch the writer is about to obsolete anyway. Whole-graph
//!   caches additionally amortize under epoch churn: a cached
//!   PageRank/CC vector keeps serving (degraded, named at its own epoch)
//!   until the pin moves [`refresh_lag`](crate::ServeConfig::refresh_lag)
//!   epochs ahead, because a whole-graph convergence costs seconds on
//!   large graphs and chasing every published epoch would starve the
//!   microsecond-scale reads behind it. Path columns are exempt — their
//!   per-delta replays are cheap, so path reads always chase the head.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use gp_algorithms::engine::initial_state;
use gp_algorithms::{
    incremental_seeds, Bfs, ConnectedComponents, IncrementalAlgorithm, PageRankDelta, Sssp, Sswp,
};
use gp_graph::{GraphView, VertexId};
use gp_turbo::run_turbo_seeded;

use crate::fused::{FusedPaths, PathKind, LANES};
use crate::snapshot::Epoch;
use crate::{Query, QueryClass, QueryResponse, Request, ServeConfig, ServeStats, Shared};

/// Longest epoch-delta chain a cached path column replays before the lane
/// falls back to a cold fused traversal. Bounds worst-case replay work
/// for a source that went cold for many epochs.
const MAX_WARM_CHAIN: u64 = 8;

/// Executor thread body for one lane: sweep until the queues are closed
/// and the lane is drained.
pub(crate) fn run(shared: &Shared, lane: usize) {
    let mut exec = Executor {
        shared,
        lane,
        path_cache: HashMap::new(),
    };
    loop {
        let batch = shared
            .queues
            .drain(lane, shared.config.max_batch, shared.config.batch_window);
        if batch.is_empty() {
            if shared.queues.is_finished(lane) {
                break;
            }
            continue;
        }
        exec.serve_sweep(batch);
    }
}

/// Per-epoch memoized whole-graph state for one algorithm.
struct ClassCache<A: IncrementalAlgorithm> {
    algo: A,
    /// Epoch `values` is converged at; `None` before the first run.
    epoch: Option<u64>,
    values: Vec<A::Value>,
    projected: Arc<Vec<f64>>,
    warm_streak: u32,
}

impl<A: IncrementalAlgorithm> ClassCache<A> {
    fn new(algo: A) -> Self {
        ClassCache {
            algo,
            epoch: None,
            values: Vec::new(),
            projected: Arc::new(Vec::new()),
            warm_streak: 0,
        }
    }

    /// Converges the cache for some epoch and returns
    /// `(epoch_served, degraded, projected)`: the pinned epoch when the
    /// cache refreshes, a newer cached epoch when another lane already
    /// advanced past the pin (exact, not degraded), or the cached older
    /// epoch — flagged degraded — under writer lag or within the
    /// [`refresh_lag`](crate::ServeConfig::refresh_lag) staleness window.
    fn ensure(
        &mut self,
        shared: &Shared,
        epoch: &Epoch,
        degraded_mode: bool,
    ) -> (u64, bool, Arc<Vec<f64>>) {
        if let Some(at) = self.epoch {
            if at >= epoch.number {
                return (at, false, Arc::clone(&self.projected));
            }
            // Reuse the cached vector — exact for the epoch it names —
            // under writer lag, and under epoch churn until the pin pulls
            // `refresh_lag` epochs ahead: whole-graph convergence costs
            // seconds while everything else in a sweep costs
            // microseconds, so chasing every published epoch would let
            // write churn starve read throughput.
            if degraded_mode || epoch.number - at < shared.config.refresh_lag as u64 {
                return (at, true, Arc::clone(&self.projected));
            }
        }
        let warm = match (self.epoch, &epoch.delta) {
            (Some(at), Some(delta))
                if at == epoch.parent
                    && self.warm_streak < shared.config.warm_limit
                    && self.values.len() == epoch.graph.num_vertices() =>
            {
                let plan = incremental_seeds(&self.algo, &epoch.graph, &mut self.values, delta);
                run_turbo_seeded(
                    &self.algo,
                    &epoch.graph,
                    &mut self.values,
                    &plan.seeds,
                    &shared.config.turbo,
                );
                true
            }
            _ => false,
        };
        if warm {
            self.warm_streak += 1;
            ServeStats::count(&shared.stats.warm_starts);
        } else {
            let (mut values, seeds) = initial_state(&self.algo, &epoch.graph);
            run_turbo_seeded(
                &self.algo,
                &epoch.graph,
                &mut values,
                &seeds,
                &shared.config.turbo,
            );
            self.values = values;
            self.warm_streak = 0;
            ServeStats::count(&shared.stats.cold_runs);
        }
        self.projected = Arc::new(
            self.values
                .iter()
                .map(|&v| self.algo.value_to_f64(v))
                .collect(),
        );
        self.epoch = Some(epoch.number);
        (epoch.number, false, Arc::clone(&self.projected))
    }
}

/// Whole-graph class caches shared by every executor lane: one epoch
/// convergence per class per epoch, whichever lane triggers it, with the
/// projected vector `Arc`-handed to readers.
pub(crate) struct SharedCaches {
    pagerank: Mutex<ClassCache<PageRankDelta>>,
    components: Mutex<ClassCache<ConnectedComponents>>,
}

impl SharedCaches {
    pub(crate) fn new(config: &ServeConfig) -> Self {
        SharedCaches {
            pagerank: Mutex::new(ClassCache::new(PageRankDelta::new(
                config.pagerank_damping,
                config.pagerank_threshold,
            ))),
            components: Mutex::new(ClassCache::new(ConnectedComponents::new())),
        }
    }
}

/// One cached multi-source lane column: the epoch it was computed at and
/// the per-destination results.
type CachedColumn = (u64, Arc<Vec<f64>>);

/// Replays one epoch delta on a projected path column: lift the column
/// back to the algorithm's typed values, re-converge incrementally, and
/// re-project. Monotone incremental re-convergence is bit-exact vs.
/// from-scratch, so the result equals a cold run at the new epoch.
fn warm_step<A: IncrementalAlgorithm, G: GraphView + Sync>(
    algo: &A,
    graph: &G,
    column: &mut Vec<f64>,
    delta: &gp_graph::AppliedBatch,
    turbo: &gp_turbo::TurboConfig,
    from: impl Fn(f64) -> A::Value,
) {
    let mut vals: Vec<A::Value> = column.iter().map(|&x| from(x)).collect();
    let plan = incremental_seeds(algo, graph, &mut vals, delta);
    run_turbo_seeded(algo, graph, &mut vals, &plan.seeds, turbo);
    *column = vals.iter().map(|&v| algo.value_to_f64(v)).collect();
}

struct Executor<'a> {
    shared: &'a Shared,
    #[allow(dead_code)]
    lane: usize,
    /// `(kind, source) -> (epoch, per-destination results)` — thread-local
    /// to this lane; the client's lane routing guarantees no other lane
    /// sees these sources.
    path_cache: HashMap<(PathKind, u32), CachedColumn>,
}

impl Executor<'_> {
    fn serve_sweep(&mut self, batch: Vec<Request>) {
        ServeStats::count(&self.shared.stats.sweeps);
        let epoch = self.shared.store.pin();
        let degraded_mode =
            self.shared.update_lag.load(Ordering::Relaxed) >= self.shared.config.degrade_lag;

        let mut value_reads: Vec<(QueryClass, u32, std::sync::mpsc::Sender<QueryResponse>)> =
            Vec::new();
        let mut paths: HashMap<PathKind, Vec<(u32, u32, std::sync::mpsc::Sender<QueryResponse>)>> =
            HashMap::new();
        for req in batch {
            match req.query {
                Query::PageRank { v } => {
                    value_reads.push((QueryClass::PageRank, v.get(), req.reply))
                }
                Query::Components { v } => {
                    value_reads.push((QueryClass::Components, v.get(), req.reply));
                }
                Query::Sssp { src, dst } => {
                    paths
                        .entry(PathKind::Sssp)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
                Query::Bfs { src, dst } => {
                    paths
                        .entry(PathKind::Bfs)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
                Query::Sswp { src, dst } => {
                    paths
                        .entry(PathKind::Sswp)
                        .or_default()
                        .push((src.get(), dst.get(), req.reply))
                }
            }
        }

        // Whole-graph classes: one ensure per class per sweep under the
        // shared cache's lock; the Arc'd projection outlives the guard so
        // replies never hold it.
        let need_pr = value_reads.iter().any(|(c, ..)| *c == QueryClass::PageRank);
        let need_cc = value_reads
            .iter()
            .any(|(c, ..)| *c == QueryClass::Components);
        let pr_at = need_pr.then(|| {
            self.shared
                .caches
                .pagerank
                .lock()
                .expect("pagerank cache poisoned")
                .ensure(self.shared, &epoch, degraded_mode)
        });
        let cc_at = need_cc.then(|| {
            self.shared
                .caches
                .components
                .lock()
                .expect("components cache poisoned")
                .ensure(self.shared, &epoch, degraded_mode)
        });
        for (class, v, reply) in value_reads {
            let (served_epoch, degraded, projected) = match class {
                QueryClass::PageRank => pr_at.as_ref().expect("ensured"),
                QueryClass::Components => cc_at.as_ref().expect("ensured"),
                _ => unreachable!("value_reads holds only whole-graph classes"),
            };
            let _ = reply.send(QueryResponse {
                epoch: *served_epoch,
                value: projected[v as usize],
                degraded: *degraded,
            });
            self.shared.stats.count_served(class, *degraded);
        }

        for kind in [PathKind::Sssp, PathKind::Bfs, PathKind::Sswp] {
            if let Some(reqs) = paths.remove(&kind) {
                self.serve_paths(kind, reqs, &epoch, degraded_mode);
            }
        }
    }

    /// Re-converges a cached column for `src` to `epoch` by replaying the
    /// delta chain between its cached epoch and the pin. `None` when
    /// there is no cache entry, the chain is too long, or any link is
    /// missing (epoch evicted from history, or a snapshot published
    /// without a recorded delta) — the caller then runs cold.
    fn warm_column(&self, kind: PathKind, src: u32, epoch: &Epoch) -> Option<Vec<f64>> {
        let &(at, ref col) = self.path_cache.get(&(kind, src))?;
        if at >= epoch.number || epoch.number - at > MAX_WARM_CHAIN {
            return None;
        }
        // Verify the whole chain is replayable before doing any work.
        let mut steps: Vec<Arc<Epoch>> = Vec::new();
        for e in at + 1..epoch.number {
            steps.push(self.shared.store.epoch(e)?);
        }
        if steps.iter().any(|s| s.delta.is_none()) || epoch.delta.is_none() {
            return None;
        }
        let mut column: Vec<f64> = col.to_vec();
        let turbo = &self.shared.config.turbo;
        let root = VertexId::new(src);
        for e in at + 1..=epoch.number {
            let step: &Epoch = if e == epoch.number {
                epoch
            } else {
                &steps[(e - at - 1) as usize]
            };
            let delta = step.delta.as_ref().expect("chain checked above");
            match kind {
                PathKind::Sssp => warm_step(
                    &Sssp::new(root),
                    &step.graph,
                    &mut column,
                    delta,
                    turbo,
                    |x| x,
                ),
                PathKind::Sswp => warm_step(
                    &Sswp::new(root),
                    &step.graph,
                    &mut column,
                    delta,
                    turbo,
                    |x| x,
                ),
                PathKind::Bfs => warm_step(
                    &Bfs::new(root),
                    &step.graph,
                    &mut column,
                    delta,
                    turbo,
                    // Lossless inverse of Bfs::value_to_f64: hop counts
                    // are small integers, ∞ is the unreached sentinel.
                    |x| if x.is_infinite() { u32::MAX } else { x as u32 },
                ),
            }
        }
        Some(column)
    }

    fn serve_paths(
        &mut self,
        kind: PathKind,
        reqs: Vec<(u32, u32, std::sync::mpsc::Sender<QueryResponse>)>,
        epoch: &Epoch,
        degraded_mode: bool,
    ) {
        // Classify sources: usable cache entry (current epoch, or any
        // epoch under degradation) vs. needs computing. BTreeSet dedups
        // and fixes lane order deterministically.
        let mut needed: BTreeSet<u32> = BTreeSet::new();
        for &(src, ..) in &reqs {
            match self.path_cache.get(&(kind, src)) {
                Some(&(at, _)) if at == epoch.number => {
                    ServeStats::count(&self.shared.stats.path_cache_hits);
                }
                Some(_) if degraded_mode => {
                    ServeStats::count(&self.shared.stats.path_cache_hits);
                }
                _ => {
                    needed.insert(src);
                }
            }
        }

        // Warm-start sources whose cached column can replay the delta
        // chain to the pinned epoch; only the rest pay a fused traversal.
        let mut cold: Vec<u32> = Vec::new();
        for src in needed {
            if let Some(column) = self.warm_column(kind, src, epoch) {
                self.path_cache
                    .insert((kind, src), (epoch.number, Arc::new(column)));
                ServeStats::count(&self.shared.stats.path_warm_starts);
            } else {
                cold.push(src);
            }
        }

        // Fuse remaining sources into shared traversals, LANES at a time.
        for chunk in cold.chunks(LANES) {
            let sources: Vec<VertexId> = chunk.iter().map(|&s| VertexId::new(s)).collect();
            let fused = FusedPaths::new(kind, &sources);
            let (mut values, seeds) = initial_state(&fused, &epoch.graph);
            run_turbo_seeded(
                &fused,
                &epoch.graph,
                &mut values,
                &seeds,
                &self.shared.config.turbo,
            );
            ServeStats::count(&self.shared.stats.fused_runs);
            for (lane, &src) in chunk.iter().enumerate() {
                let column: Vec<f64> = values.iter().map(|v| v[lane]).collect();
                self.path_cache
                    .insert((kind, src), (epoch.number, Arc::new(column)));
            }
        }

        let class = match kind {
            PathKind::Sssp => QueryClass::Sssp,
            PathKind::Bfs => QueryClass::Bfs,
            PathKind::Sswp => QueryClass::Sswp,
        };
        for (src, dst, reply) in reqs {
            let (at, column) = self
                .path_cache
                .get(&(kind, src))
                .expect("every source is cached or was just computed");
            let degraded = *at != epoch.number;
            let _ = reply.send(QueryResponse {
                epoch: *at,
                value: column[dst as usize],
                degraded,
            });
            self.shared.stats.count_served(class, degraded);
        }

        // Bound cache memory: over capacity, first drop stale-epoch
        // entries (current ones keep warm-start continuity); a full reset
        // only if the current epoch alone overflows.
        if self.path_cache.len() > self.shared.config.path_cache_sources {
            let now = epoch.number;
            self.path_cache.retain(|_, &mut (at, _)| at == now);
            if self.path_cache.len() > self.shared.config.path_cache_sources {
                self.path_cache.clear();
            }
        }
    }
}
