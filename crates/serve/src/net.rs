//! Line-oriented TCP front end.
//!
//! The concurrency/versioning architecture is the point of this crate,
//! not the protocol — so the wire format is a deliberately minimal,
//! human-typeable line protocol over the same [`ServeClient`] /
//! [`Updater`] paths the in-process API uses:
//!
//! ```text
//! Q <tenant> pagerank <v>        -> OK <epoch> <value> [degraded]
//! Q <tenant> cc <v>              -> OK <epoch> <value> [degraded]
//! Q <tenant> sssp <src> <dst>    -> OK <epoch> <value> [degraded]
//! Q <tenant> bfs <src> <dst>     -> OK <epoch> <value> [degraded]
//! Q <tenant> sswp <src> <dst>    -> OK <epoch> <value> [degraded]
//! U insert <src> <dst> <weight>  -> OK update queued
//! U delete <src> <dst>           -> OK update queued
//! EPOCH                          -> OK <current epoch>
//! ```
//!
//! Any rejection or parse failure answers `ERR <reason>` and keeps the
//! connection open; an empty line closes it. One thread per connection
//! (std-only, no async runtime), which is plenty for a management-plane
//! protocol — bulk traffic uses the in-process API.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;

use gp_graph::{EdgeUpdate, VertexId};

use crate::{Query, QueryClass, Rejection, ServeClient, Updater};

/// A running TCP front end.
pub struct TcpFrontEnd {
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFrontEnd {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// connections, each served by its own thread against `client` /
    /// `updater` clones.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, client: ServeClient, updater: Updater) -> std::io::Result<TcpFrontEnd> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let accept_thread = std::thread::Builder::new()
            .name("gp-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { break };
                    let client = client.clone();
                    let updater = updater.clone();
                    let _ = std::thread::Builder::new()
                        .name("gp-serve-conn".into())
                        .spawn(move || serve_connection(stream, &client, &updater));
                }
            })
            .expect("spawn accept thread");
        Ok(TcpFrontEnd {
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }
}

impl Drop for TcpFrontEnd {
    fn drop(&mut self) {
        // The accept thread exits when the listener errors (process
        // teardown) — detach rather than block here.
        if let Some(h) = self.accept_thread.take() {
            drop(h);
        }
    }
}

fn serve_connection(stream: TcpStream, client: &ServeClient, updater: &Updater) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        let response = handle_line(trimmed, client, updater);
        if writeln!(out, "{response}").is_err() {
            return;
        }
    }
}

fn handle_line(line: &str, client: &ServeClient, updater: &Updater) -> String {
    match dispatch(line, client, updater) {
        Ok(ok) => ok,
        Err(e) => format!("ERR {e}"),
    }
}

fn dispatch(line: &str, client: &ServeClient, updater: &Updater) -> Result<String, String> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("Q") => {
            let tenant_name = words.next().ok_or("usage: Q <tenant> <class> <args>")?;
            let tenant = client.tenant_id(tenant_name).ok_or_else(|| {
                Rejection::UnknownTenant {
                    tenant: tenant_name.to_string(),
                }
                .to_string()
            })?;
            let class = words.next().ok_or("missing query class")?;
            let class = QueryClass::parse(class).ok_or_else(|| {
                format!("unknown class {class:?} (known: pagerank, cc, sssp, bfs, sswp)")
            })?;
            let query = parse_query(class, &mut words)?;
            if words.next().is_some() {
                return Err("trailing arguments".into());
            }
            let r = client.query(tenant, query).map_err(|e| e.to_string())?;
            Ok(if r.degraded {
                format!("OK {} {} degraded", r.epoch, r.value)
            } else {
                format!("OK {} {}", r.epoch, r.value)
            })
        }
        Some("U") => {
            let update = match words.next() {
                Some("insert") => EdgeUpdate::Insert {
                    src: parse_vertex(words.next(), client)?,
                    dst: parse_vertex(words.next(), client)?,
                    weight: words
                        .next()
                        .ok_or("usage: U insert <src> <dst> <weight>")?
                        .parse::<f32>()
                        .map_err(|e| format!("bad weight: {e}"))?,
                },
                Some("delete") => EdgeUpdate::Delete {
                    src: parse_vertex(words.next(), client)?,
                    dst: parse_vertex(words.next(), client)?,
                },
                _ => return Err("usage: U <insert|delete> ...".into()),
            };
            if words.next().is_some() {
                return Err("trailing arguments".into());
            }
            updater
                .try_submit(vec![update])
                .map_err(|e| e.to_string())?;
            Ok("OK update queued".into())
        }
        Some("EPOCH") => Ok(format!("OK {}", client.current_epoch())),
        _ => Err("unknown command (known: Q, U, EPOCH)".into()),
    }
}

fn parse_query<'a>(
    class: QueryClass,
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<Query, String> {
    let mut vertex = |what: &str| -> Result<VertexId, String> {
        let w = words.next().ok_or_else(|| format!("missing {what}"))?;
        let id: u32 = w.parse().map_err(|e| format!("bad {what} {w:?}: {e}"))?;
        Ok(VertexId::new(id))
    };
    Ok(match class {
        QueryClass::PageRank => Query::PageRank {
            v: vertex("vertex")?,
        },
        QueryClass::Components => Query::Components {
            v: vertex("vertex")?,
        },
        QueryClass::Sssp => Query::Sssp {
            src: vertex("src")?,
            dst: vertex("dst")?,
        },
        QueryClass::Bfs => Query::Bfs {
            src: vertex("src")?,
            dst: vertex("dst")?,
        },
        QueryClass::Sswp => Query::Sswp {
            src: vertex("src")?,
            dst: vertex("dst")?,
        },
    })
}

fn parse_vertex(word: Option<&str>, client: &ServeClient) -> Result<VertexId, String> {
    let w = word.ok_or("missing vertex id")?;
    let id: u32 = w.parse().map_err(|e| format!("bad vertex {w:?}: {e}"))?;
    if (id as usize) < client.num_vertices() {
        Ok(VertexId::new(id))
    } else {
        Err(format!(
            "vertex {id} out of range for {} vertices",
            client.num_vertices()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, Server};
    use gp_graph::generators::{rmat, RmatConfig, WeightMode};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn tcp_round_trip() {
        let g = rmat(
            &RmatConfig::graph500(128, 1_024).with_weights(WeightMode::Uniform(1.0, 9.0)),
            3,
        );
        let handle = Server::start(g, ServeConfig::default());
        let front = TcpFrontEnd::bind("127.0.0.1:0", handle.client(), handle.updater())
            .expect("bind loopback");
        let stream = TcpStream::connect(front.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let mut ask = |line: &str| -> String {
            writeln!(stream, "{line}").expect("write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            reply.trim_end().to_string()
        };

        assert_eq!(ask("EPOCH"), "OK 0");
        let r = ask("Q default sssp 0 17");
        assert!(r.starts_with("OK 0 "), "unexpected reply {r:?}");
        let r = ask("Q default pagerank 5");
        assert!(r.starts_with("OK 0 "), "unexpected reply {r:?}");
        let r = ask("Q nobody cc 1");
        assert!(
            r.starts_with("ERR unknown-tenant"),
            "unexpected reply {r:?}"
        );
        let r = ask("Q default warp 1");
        assert!(r.starts_with("ERR unknown class"), "unexpected reply {r:?}");
        let r = ask("Q default sssp 0 999999");
        assert!(r.starts_with("ERR bad-query"), "unexpected reply {r:?}");
        assert_eq!(ask("U insert 0 99 2.5"), "OK update queued");
        let r = ask("U teleport 1 2");
        assert!(r.starts_with("ERR usage"), "unexpected reply {r:?}");

        drop(front);
        let stats = handle.shutdown();
        assert_eq!(stats.served, 2);
        assert!(stats.update_batches >= 1);
    }
}
