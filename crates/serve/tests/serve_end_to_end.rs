//! End-to-end service test: concurrent updates and mixed queries, with
//! every response cross-checked against a golden sequential recompute on
//! the exact epoch the response names.
//!
//! This is the serving contract in miniature: whatever epoch the executor
//! pinned (current or, under degradation, a stale one), the value it
//! returns must be the value a from-scratch golden run produces on that
//! epoch's snapshot — bit-exact for the monotone classes, within the
//! algorithm's comparison tolerance for PageRank.

use std::time::Duration;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp, Sswp};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::{OverlayGraph, VertexId};
use gp_serve::{Query, Rejection, ServeConfig, Server};
use gp_stream::UpdateStream;

const VERTICES: usize = 1_024;
const BATCHES: usize = 20;
const BATCH_LEN: usize = 32;

#[test]
fn mixed_queries_match_golden_on_their_named_epoch() {
    let g = rmat(
        &RmatConfig::graph500(VERTICES, 8 * VERTICES).with_weights(WeightMode::Uniform(1.0, 9.0)),
        5,
    );
    let shadow_base = g.clone();
    let config = ServeConfig {
        retain_epochs: 256, // keep every epoch for the cross-check
        ..ServeConfig::default()
    };
    let handle = Server::start(g, config);
    let client = handle.client();
    let updater = handle.updater();
    let tenant = client.tenant_id("default").expect("default tenant");

    // Updater thread: deterministic batches against a shadow overlay (the
    // stream needs current topology to generate real deletes).
    let writer = std::thread::spawn(move || {
        let mut shadow = OverlayGraph::new(shadow_base);
        let mut stream = UpdateStream::new(VERTICES, 0.3, WeightMode::Uniform(1.0, 9.0), 77);
        for _ in 0..BATCHES {
            let updates = stream.next_batch(&shadow, BATCH_LEN);
            shadow.apply(&updates);
            assert!(updater.submit(updates));
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    // Client: mixed traffic racing the updater. Sources cycle through a
    // small hot pool so fused lanes and the path cache both get exercised.
    let mut answered = Vec::new();
    for i in 0..240u32 {
        let src = VertexId::new((i % 7) * 13 % VERTICES as u32);
        let dst = VertexId::new((i * 37 + 11) % VERTICES as u32);
        let query = match i % 5 {
            0 => Query::PageRank { v: dst },
            1 => Query::Components { v: dst },
            2 => Query::Sssp { src, dst },
            3 => Query::Bfs { src, dst },
            _ => Query::Sswp { src, dst },
        };
        let response = client.query(tenant, query).expect("admitted");
        answered.push((query, response));
    }
    writer.join().expect("updater thread");

    // Malformed queries are shed with a typed rejection, not served.
    let bad = client.query(
        tenant,
        Query::PageRank {
            v: VertexId::new(VERTICES as u32),
        },
    );
    assert!(matches!(bad, Err(Rejection::BadQuery(_))), "{bad:?}");

    // Cross-check every answer on the epoch it names.
    let pagerank = PageRankDelta::new(0.85, 1e-9);
    let tolerance = pagerank.comparison_tolerance();
    let mut degraded_seen = 0u64;
    for (query, response) in &answered {
        let epoch = handle
            .store()
            .epoch(response.epoch)
            .expect("every served epoch is retained");
        assert_eq!(epoch.number, response.epoch);
        if response.degraded {
            degraded_seen += 1;
        }
        let golden = match *query {
            Query::PageRank { v } => {
                let out = run_sequential(&pagerank, &epoch.graph);
                let diff = (out.values[v.index()] - response.value).abs();
                assert!(
                    diff <= tolerance,
                    "pagerank({v:?}) off by {diff:e} at epoch {}",
                    response.epoch
                );
                continue;
            }
            Query::Components { v } => {
                run_sequential(&ConnectedComponents::new(), &epoch.graph).values[v.index()]
            }
            Query::Sssp { src, dst } => {
                run_sequential(&Sssp::new(src), &epoch.graph).values[dst.index()]
            }
            Query::Bfs { src, dst } => {
                run_sequential(&gp_algorithms::Bfs::new(src), &epoch.graph).values[dst.index()]
            }
            Query::Sswp { src, dst } => {
                run_sequential(&Sswp::new(src), &epoch.graph).values[dst.index()]
            }
        };
        assert_eq!(
            golden.to_bits(),
            response.value.to_bits(),
            "{query:?} at epoch {} (degraded: {})",
            response.epoch,
            response.degraded
        );
    }

    let late_client = client.clone();
    let stats = handle.shutdown();
    assert_eq!(stats.served, 240);
    assert_eq!(stats.update_batches, BATCHES as u64);
    assert!(stats.epochs_published >= 1);
    assert!(stats.fused_runs >= 1, "path fusion never ran");
    assert_eq!(stats.rejected, 1, "exactly the malformed query");
    assert_eq!(stats.degraded, degraded_seen);

    // After shutdown the admission queues are closed: typed shed, no hang.
    let refused = late_client.query(
        tenant,
        Query::Components {
            v: VertexId::new(0),
        },
    );
    assert_eq!(refused, Err(Rejection::ShuttingDown));
}

#[test]
fn warm_starts_engage_under_steady_pagerank_traffic() {
    let g = rmat(
        &RmatConfig::graph500(512, 4_096).with_weights(WeightMode::Uniform(1.0, 9.0)),
        9,
    );
    let shadow_base = g.clone();
    // refresh_lag 1 = chase every epoch, so each read exercises the
    // one-delta-behind warm path this test is about.
    let config = ServeConfig {
        refresh_lag: 1,
        ..ServeConfig::default()
    };
    let handle = Server::start(g, config);
    let client = handle.client();
    let updater = handle.updater();
    let tenant = client.tenant_id("default").expect("default tenant");

    let mut shadow = OverlayGraph::new(shadow_base);
    let mut stream = UpdateStream::new(512, 0.3, WeightMode::Uniform(1.0, 9.0), 13);
    for i in 0..8u32 {
        // One batch, then wait until it is applied so the next PageRank
        // read lands exactly one delta behind its cache — the warm path.
        let updates = stream.next_batch(&shadow, 16);
        shadow.apply(&updates);
        assert!(updater.submit(updates));
        while updater.lag() > 0 {
            std::thread::yield_now();
        }
        let r = client
            .query(
                tenant,
                Query::PageRank {
                    v: VertexId::new(i % 512),
                },
            )
            .expect("admitted");
        assert!(!r.degraded);
    }

    let stats = handle.shutdown();
    assert!(
        stats.warm_starts >= 1,
        "steady one-delta-behind traffic should warm-start: {stats:?}"
    );
}
