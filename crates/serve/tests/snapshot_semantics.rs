//! Snapshot-semantics guarantees of the epoch store (the serving
//! contract): a pinned epoch never changes after publish — not under
//! concurrent publishes, not under delete-heavy churn, not under
//! compaction of the writer's master overlay.
//!
//! Every test drives the real publication path ([`OverlayGraph::apply`] →
//! [`OverlayGraph::freeze`] → [`SnapshotStore::publish`]) and checks
//! bit-identical algorithm results on pinned epochs, which is the
//! strongest observable form of "the snapshot did not mutate".

use std::sync::Arc;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::Sssp;
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::{GraphView, OverlayGraph, VertexId};
use gp_serve::SnapshotStore;
use gp_stream::UpdateStream;

const VERTICES: usize = 512;

fn setup(seed: u64) -> (OverlayGraph, UpdateStream) {
    let g = rmat(
        &RmatConfig::graph500(VERTICES, 4 * VERTICES).with_weights(WeightMode::Uniform(1.0, 9.0)),
        seed,
    );
    let overlay = OverlayGraph::new(g);
    let stream = UpdateStream::new(VERTICES, 0.3, WeightMode::Uniform(1.0, 9.0), seed ^ 0x5eed);
    (overlay, stream)
}

fn sssp_bits(graph: &impl GraphView, root: u32) -> Vec<u64> {
    run_sequential(&Sssp::new(VertexId::new(root)), graph)
        .values
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn pinned_reader_is_isolated_from_concurrent_publishes() {
    let (mut overlay, mut stream) = setup(11);
    let store = SnapshotStore::new(overlay.freeze(), 4);

    let pinned = store.pin();
    assert_eq!(pinned.number, 0);
    let before = sssp_bits(&pinned.graph, 0);

    // Writer races ahead: ten batches, ten published epochs.
    for _ in 0..10 {
        let updates = stream.next_batch(&overlay, 32);
        let applied = overlay.apply(&updates);
        store.publish(overlay.freeze(), applied);
    }
    assert_eq!(store.current_number(), 10);

    // The pin still names epoch 0 and still computes the epoch-0 answer,
    // bit for bit, even though the overlay has drifted ten batches away.
    assert_eq!(pinned.number, 0);
    assert_eq!(sssp_bits(&pinned.graph, 0), before);
    assert_ne!(
        sssp_bits(&store.pin().graph, 0),
        before,
        "ten batches should have changed at least one distance"
    );
}

#[test]
fn delete_heavy_batches_leave_every_retained_epoch_intact() {
    let (mut overlay, mut stream) = setup(23);
    // Delete-heavy churn: 80% deletes once the overlay has edges to kill.
    let mut heavy = UpdateStream::new(VERTICES, 0.8, WeightMode::Uniform(1.0, 9.0), 99);
    let store = SnapshotStore::new(overlay.freeze(), 16);

    let mut witnessed: Vec<(Arc<gp_serve::Epoch>, Vec<u64>, usize)> = Vec::new();
    for round in 0..12 {
        let stream = if round % 3 == 0 {
            &mut stream
        } else {
            &mut heavy
        };
        let updates = stream.next_batch(&overlay, 48);
        let applied = overlay.apply(&updates);
        store.publish(overlay.freeze(), applied);
        let pin = store.pin();
        let bits = sssp_bits(&pin.graph, 1);
        let edges = pin.graph.num_edges();
        witnessed.push((pin, bits, edges));
    }

    // Re-verify every pinned epoch after all the churn: same edge count,
    // same bit-exact distances, and the store still serves the same Arc.
    for (pin, bits, edges) in &witnessed {
        assert_eq!(pin.graph.num_edges(), *edges);
        assert_eq!(&sssp_bits(&pin.graph, 1), bits, "epoch {}", pin.number);
        let looked_up = store.epoch(pin.number).expect("retained");
        assert_eq!(&sssp_bits(&looked_up.graph, 1), bits);
    }
}

#[test]
fn compaction_concurrent_with_pinned_readers_changes_nothing() {
    let (mut overlay, mut stream) = setup(37);
    let store = SnapshotStore::new(overlay.freeze(), 8);

    let mut pins = Vec::new();
    for _ in 0..6 {
        let updates = stream.next_batch(&overlay, 64);
        let applied = overlay.apply(&updates);
        store.publish(overlay.freeze(), applied);
        let pin = store.pin();
        let bits = sssp_bits(&pin.graph, 2);
        pins.push((pin, bits));
        // Force compaction every round (threshold 0 ⇒ any pool use
        // triggers); this rebuilds the master's base CSR while readers
        // hold frozen snapshots of the old base.
        overlay.maybe_compact(0.0);
        assert_eq!(overlay.pool_edge_slots(), 0, "compaction ran");
    }

    for (pin, bits) in &pins {
        assert_eq!(
            &sssp_bits(&pin.graph, 2),
            bits,
            "epoch {} mutated after a later compaction",
            pin.number
        );
    }

    // And a compacted-master publish equals the patched view it replaced:
    // the last pin predates the final compaction, the current epoch's
    // graph is frozen from the compacted master — same topology.
    let updates = stream.next_batch(&overlay, 0);
    assert!(updates.is_empty());
    let current = store.pin();
    let (last_pin, last_bits) = pins.last().expect("pinned six epochs");
    assert_eq!(current.number, last_pin.number);
    assert_eq!(&sssp_bits(&current.graph, 2), last_bits);
}

#[test]
fn history_eviction_keeps_current_reachable() {
    let (mut overlay, mut stream) = setup(41);
    let store = SnapshotStore::new(overlay.freeze(), 3);
    for _ in 0..9 {
        let updates = stream.next_batch(&overlay, 16);
        let applied = overlay.apply(&updates);
        store.publish(overlay.freeze(), applied);
    }
    assert_eq!(store.current_number(), 9);
    // Old epochs age out of the lookup window; recent ones (and the
    // current epoch) stay resolvable for offline verification.
    assert!(store.epoch(0).is_none());
    assert!(store.epoch(9).is_some());
    let oldest_retained = (0..=9).find(|&n| store.epoch(n).is_some()).expect("some");
    for n in oldest_retained..=9 {
        assert_eq!(store.epoch(n).expect("retained window is dense").number, n);
    }
}
