//! Concurrency contract tests: byte-stable reader results under racing
//! writers, with the interleavings pinned down deterministically.
//!
//! Three interleavings the multi-executor service must survive:
//!
//! 1. **Publish while pinned** — a reader holds an epoch pin while the
//!    writer publishes (and the overlay mutates) underneath it. The
//!    pinned snapshot must be frozen: recomputing on it before and after
//!    the racing publishes yields identical bits.
//! 2. **Compact while querying** — aggressive compaction swaps the
//!    overlay's base CSR behind every publish while queries are in
//!    flight. Every response must still recompute bit-exactly on the
//!    epoch it names, and a pre-compaction pin must stay byte-stable.
//! 3. **Drain during publish** — multiple client threads flood the
//!    executor pool while the writer races batch publishes. Every
//!    response, whatever epoch it landed on, must be exact for the epoch
//!    it names.
//!
//! The interleavings are sequenced explicitly (submit → wait for
//! `lag == 0` → assert) where the contract is about a *specific* order,
//! and left racing (barrier-started threads) where the contract must hold
//! for *every* order. All servers run with multiple executors and
//! sharded turbo so the concurrency machinery itself is under test.

use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp, Sswp};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::{GraphSnapshot, OverlayGraph, VertexId};
use gp_serve::{Query, QueryResponse, ServeConfig, Server};
use gp_stream::UpdateStream;

const VERTICES: usize = 512;

fn base_graph(seed: u64) -> gp_graph::CsrGraph {
    rmat(
        &RmatConfig::graph500(VERTICES, 8 * VERTICES).with_weights(WeightMode::Uniform(1.0, 9.0)),
        seed,
    )
}

/// Golden recompute of `query` on `graph`, as f64 bits (PageRank is
/// checked by tolerance separately and must not go through here).
fn golden_bits(query: Query, graph: &GraphSnapshot) -> u64 {
    let v = match query {
        Query::Components { v } => {
            run_sequential(&ConnectedComponents::new(), graph).values[v.index()]
        }
        Query::Sssp { src, dst } => run_sequential(&Sssp::new(src), graph).values[dst.index()],
        Query::Bfs { src, dst } => run_sequential(&Bfs::new(src), graph).values[dst.index()],
        Query::Sswp { src, dst } => run_sequential(&Sswp::new(src), graph).values[dst.index()],
        Query::PageRank { .. } => unreachable!("pagerank is tolerance-checked, not bit-checked"),
    };
    v.to_bits()
}

/// Cross-checks one served response against a golden run on the epoch it
/// names (bit-exact for monotone classes, tolerance for PageRank).
fn assert_golden(handle: &gp_serve::ServeHandle, query: Query, response: &QueryResponse) {
    let epoch = handle
        .store()
        .epoch(response.epoch)
        .expect("served epoch retained");
    if let Query::PageRank { v } = query {
        let pr = PageRankDelta::new(0.85, 1e-9);
        let out = run_sequential(&pr, &epoch.graph);
        let diff = (out.values[v.index()] - response.value).abs();
        assert!(
            diff <= pr.comparison_tolerance(),
            "pagerank({v:?}) off by {diff:e} at epoch {}",
            response.epoch
        );
    } else {
        assert_eq!(
            golden_bits(query, &epoch.graph),
            response.value.to_bits(),
            "{query:?} not exact on its named epoch {}",
            response.epoch
        );
    }
}

fn mixed_query(i: u32) -> Query {
    let src = VertexId::new((i % 7) * 13 % VERTICES as u32);
    let dst = VertexId::new((i * 37 + 11) % VERTICES as u32);
    match i % 5 {
        0 => Query::PageRank { v: dst },
        1 => Query::Components { v: dst },
        2 => Query::Sssp { src, dst },
        3 => Query::Bfs { src, dst },
        _ => Query::Sswp { src, dst },
    }
}

#[test]
fn publish_while_pinned_keeps_pinned_reads_byte_stable() {
    let g = base_graph(31);
    let shadow_base = g.clone();
    let handle = Server::start(
        g,
        ServeConfig {
            executors: 2,
            turbo_shards: 2,
            retain_epochs: 256,
            ..ServeConfig::default()
        },
    );
    let client = handle.client();
    let updater = handle.updater();
    let tenant = client.tenant_id("default").unwrap();

    // Step 1: serve a query and pin the epoch it was computed on.
    let query = Query::Sssp {
        src: VertexId::new(3),
        dst: VertexId::new(200),
    };
    let first = client.query(tenant, query).expect("admitted");
    let pinned = handle.store().pin();
    assert_eq!(pinned.number, first.epoch, "nothing published yet");
    let before = golden_bits(query, &pinned.graph);
    assert_eq!(before, first.value.to_bits());

    // Step 2: race ten publishes underneath the held pin, then wait until
    // the writer has applied every one (lag drains to zero) so the
    // interleaving is pinned: all ten mutations strictly between the two
    // golden runs on the pinned snapshot.
    let mut shadow = OverlayGraph::new(shadow_base);
    let mut stream = UpdateStream::new(VERTICES, 0.3, WeightMode::Uniform(1.0, 9.0), 71);
    for _ in 0..10 {
        let updates = stream.next_batch(&shadow, 24);
        shadow.apply(&updates);
        assert!(updater.submit(updates));
    }
    while updater.lag() > 0 {
        std::thread::yield_now();
    }
    assert!(client.current_epoch() > pinned.number, "epochs advanced");

    // Step 3: the pinned snapshot is frozen — identical bits after the
    // racing publishes — and live queries moved on to a newer epoch that
    // is itself golden-exact.
    let after = golden_bits(query, &pinned.graph);
    assert_eq!(before, after, "pinned epoch mutated under publishes");
    let fresh = client.query(tenant, query).expect("admitted");
    assert!(fresh.epoch > first.epoch);
    assert_golden(&handle, query, &fresh);
    // The original response still replays bit-exactly on its named epoch.
    assert_golden(&handle, query, &first);

    handle.shutdown();
}

#[test]
fn compaction_never_disturbs_pinned_queries() {
    let g = base_graph(47);
    let shadow_base = g.clone();
    let handle = Server::start(
        g,
        ServeConfig {
            executors: 2,
            turbo_shards: 2,
            retain_epochs: 256,
            // Compact after every publish: the base CSR Arc is swapped
            // constantly while queries are in flight.
            compact_fraction: 0.0,
            ..ServeConfig::default()
        },
    );
    let client = handle.client();
    let updater = handle.updater();
    let tenant = client.tenant_id("default").unwrap();

    // Phase 1: a spread of queries answered on the pre-compaction epochs.
    let mut answered: Vec<(Query, QueryResponse)> = Vec::new();
    for i in 0..40u32 {
        let q = mixed_query(i);
        answered.push((q, client.query(tenant, q).expect("admitted")));
    }
    let pinned = handle.store().pin();
    let probe = Query::Sswp {
        src: VertexId::new(5),
        dst: VertexId::new(101),
    };
    let probe_before = golden_bits(probe, &pinned.graph);

    // Phase 2: publish 12 batches, each followed by a compaction, while
    // more queries race the writer from this thread.
    let mut shadow = OverlayGraph::new(shadow_base);
    let mut stream = UpdateStream::new(VERTICES, 0.3, WeightMode::Uniform(1.0, 9.0), 53);
    for i in 0..12u32 {
        let updates = stream.next_batch(&shadow, 24);
        shadow.apply(&updates);
        assert!(updater.submit(updates));
        let q = mixed_query(100 + i);
        answered.push((q, client.query(tenant, q).expect("admitted")));
    }
    while updater.lag() > 0 {
        std::thread::yield_now();
    }

    // Phase 3: the pinned snapshot survived every base swap bit-for-bit,
    // and every answer (pre- and mid-compaction) recomputes exactly on
    // the epoch it names.
    assert_eq!(
        probe_before,
        golden_bits(probe, &pinned.graph),
        "compaction disturbed a pinned snapshot"
    );
    for (q, r) in &answered {
        assert_golden(&handle, *q, r);
    }

    let stats = handle.shutdown();
    assert_eq!(stats.served, answered.len() as u64);
    assert!(stats.epochs_published >= 1);
}

#[test]
fn drain_during_publish_is_golden_exact_across_the_pool() {
    const CLIENTS: usize = 3;
    const PER_CLIENT: u32 = 60;
    let g = base_graph(59);
    let shadow_base = g.clone();
    let handle = Server::start(
        g,
        ServeConfig {
            executors: 3,
            turbo_shards: 2,
            retain_epochs: 256,
            ..ServeConfig::default()
        },
    );
    let updater = handle.updater();

    // Barrier-started writer + clients: the drain and the publishes
    // overlap from the first query on, in whatever order the scheduler
    // picks — the invariant must hold for all of them.
    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let (done_tx, done_rx) = mpsc::channel::<Vec<(Query, QueryResponse)>>();
    std::thread::scope(|scope| {
        {
            let start = Arc::clone(&start);
            scope.spawn(move || {
                let mut shadow = OverlayGraph::new(shadow_base);
                let mut stream =
                    UpdateStream::new(VERTICES, 0.3, WeightMode::Uniform(1.0, 9.0), 97);
                start.wait();
                for _ in 0..16 {
                    let updates = stream.next_batch(&shadow, 24);
                    shadow.apply(&updates);
                    assert!(updater.submit(updates));
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for c in 0..CLIENTS {
            let client = handle.client();
            let start = Arc::clone(&start);
            let done = done_tx.clone();
            scope.spawn(move || {
                let tenant = client.tenant_id("default").unwrap();
                let mut answered = Vec::new();
                start.wait();
                for i in 0..PER_CLIENT {
                    let q = mixed_query(c as u32 * 1_000 + i);
                    answered.push((q, client.query(tenant, q).expect("admitted")));
                }
                done.send(answered).unwrap();
            });
        }
        drop(done_tx);
    });

    let mut total = 0u64;
    for answered in done_rx {
        for (q, r) in &answered {
            assert_golden(&handle, *q, r);
        }
        total += answered.len() as u64;
    }
    assert_eq!(total, (CLIENTS as u64) * u64::from(PER_CLIENT));

    let stats = handle.shutdown();
    assert_eq!(stats.served, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.update_batches, 16);
}
