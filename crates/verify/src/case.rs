//! Random, fully seed-determined test cases.
//!
//! A [`TestCase`] is a plain-data description of one differential-oracle
//! run: an explicit edge list (so the shrinker can delete edges one by
//! one), the algorithm under test, an insert/delete update stream, and a
//! compact machine description. Everything derives from a single `u64`
//! seed via [`generate`], so a case can be reproduced from its seed alone
//! — and reconstructed verbatim from the literal the shrinker prints.

use gp_algorithms::normalize_inbound;
use gp_graph::generators::{barabasi_albert, erdos_renyi, rmat, RmatConfig, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, EdgeUpdate, GraphBuilder, OverlayGraph, VertexId};
use gp_stream::UpdateStream;
use graphpulse_core::{AcceleratorConfig, ParallelConfig, QueueConfig, SchedulingPolicy};

/// Which of the five bundled algorithms a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// PageRank-Delta (accumulative, `f64` sums).
    PageRank,
    /// Adsorption label propagation (accumulative, weighted).
    Adsorption,
    /// Single-source shortest paths (monotone min).
    Sssp,
    /// Breadth-first search (monotone min).
    Bfs,
    /// Connected components (monotone min over labels).
    Cc,
    /// Single-source widest paths (monotone max, weighted).
    Sswp,
}

impl AlgoKind {
    /// All kinds, in the rotation order the fuzz driver uses.
    pub const ALL: [AlgoKind; 6] = [
        AlgoKind::PageRank,
        AlgoKind::Adsorption,
        AlgoKind::Sssp,
        AlgoKind::Bfs,
        AlgoKind::Cc,
        AlgoKind::Sswp,
    ];

    /// Short label for logs.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::PageRank => "pr",
            AlgoKind::Adsorption => "ads",
            AlgoKind::Sssp => "sssp",
            AlgoKind::Bfs => "bfs",
            AlgoKind::Cc => "cc",
            AlgoKind::Sswp => "sswp",
        }
    }

    /// Whether the case's graph carries meaningful weights.
    pub fn weighted(self) -> bool {
        matches!(self, AlgoKind::Sssp | AlgoKind::Adsorption | AlgoKind::Sswp)
    }
}

/// A compact, shrink-stable machine description, expanded to a full
/// [`AcceleratorConfig`] by [`MachineParams::to_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineParams {
    /// Event processors.
    pub processors: usize,
    /// Generation streams per processor.
    pub gen_streams: usize,
    /// Queue bins.
    pub queue_bins: usize,
    /// Queue rows per bin.
    pub queue_rows: usize,
    /// Queue slots per row.
    pub queue_cols: usize,
    /// Coalescer pipeline depth.
    pub coalescer_depth: u64,
    /// Scratchpad prefetcher on/off.
    pub prefetch: bool,
    /// `true` = occupancy-first bin draining, `false` = round-robin.
    pub occupancy_first: bool,
    /// `true` = single-channel DRAM, `false` = the paper's 4 channels.
    pub single_channel_dram: bool,
    /// Epoch length of the shard-parallel runner.
    pub epoch_cycles: u64,
    /// Forced shard count for the parallel runner (`0` = derive).
    pub forced_shards: usize,
}

impl MachineParams {
    /// Expands to a validated full configuration.
    pub fn to_config(&self) -> AcceleratorConfig {
        let queue = QueueConfig {
            bins: self.queue_bins,
            rows: self.queue_rows,
            cols: self.queue_cols,
        };
        let cfg = AcceleratorConfig {
            processors: self.processors,
            gen_streams: self.gen_streams,
            queue,
            coalescer_depth: self.coalescer_depth,
            input_buffer: queue.cols * 2,
            prefetch: self.prefetch,
            scheduling: if self.occupancy_first {
                SchedulingPolicy::OccupancyFirst
            } else {
                SchedulingPolicy::RoundRobin
            },
            dram: if self.single_channel_dram {
                gp_mem::DramConfig::single_channel()
            } else {
                gp_mem::DramConfig::paper()
            },
            parallel: ParallelConfig {
                workers: 1,
                epoch_cycles: self.epoch_cycles,
                shards: self.forced_shards,
            },
            ..AcceleratorConfig::small_test()
        };
        cfg.validate().expect("generated machine must be valid");
        cfg
    }
}

/// One self-contained differential-oracle input.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Vertex count (edges/updates referencing `>= vertices` are dropped
    /// when the graph is built, which keeps shrinking trivially sound).
    pub vertices: usize,
    /// Explicit directed edge list `(src, dst, weight)`.
    pub edges: Vec<(u32, u32, f32)>,
    /// Algorithm under test.
    pub algo: AlgoKind,
    /// Root vertex for SSSP/BFS (clamped into range at build time).
    pub root: u32,
    /// Seed for auxiliary randomness that must survive shrinking unchanged
    /// (Adsorption parameters, metamorphic permutations).
    pub aux_seed: u64,
    /// Insert/delete stream applied in chunks of [`TestCase::batch_size`].
    pub updates: Vec<EdgeUpdate>,
    /// Update-batch granularity for the incremental leg.
    pub batch_size: usize,
    /// Machine description.
    pub machine: MachineParams,
}

impl TestCase {
    /// Builds the case's graph: out-of-range endpoints and self loops are
    /// dropped, parallel edges deduplicated, and — for Adsorption — inbound
    /// weights normalized (the algorithm's precondition).
    pub fn build_graph(&self) -> CsrGraph {
        let n = self.vertices.max(1);
        let mut b = GraphBuilder::new(n);
        b.weighted(self.algo.weighted());
        for &(s, d, w) in &self.edges {
            if s != d && (s as usize) < n && (d as usize) < n {
                b.add_edge(VertexId::new(s), VertexId::new(d), w);
            }
        }
        let g = b.build();
        if self.algo == AlgoKind::Adsorption {
            normalize_inbound(&g)
        } else {
            g
        }
    }

    /// The case's root, clamped into the built graph's vertex range.
    pub fn clamped_root(&self) -> VertexId {
        VertexId::new(self.root.min(self.vertices.max(1) as u32 - 1))
    }

    /// Updates restricted to endpoints `< vertices`, in batch-sized chunks.
    pub fn update_batches(&self) -> Vec<Vec<EdgeUpdate>> {
        let n = self.vertices.max(1) as u32;
        let in_range = |u: &EdgeUpdate| match *u {
            EdgeUpdate::Insert { src, dst, .. } | EdgeUpdate::Delete { src, dst } => {
                src.get() < n && dst.get() < n && src != dst
            }
        };
        let filtered: Vec<EdgeUpdate> = self
            .updates
            .iter()
            .filter(|u| in_range(u))
            .copied()
            .collect();
        filtered
            .chunks(self.batch_size.max(1))
            .map(<[EdgeUpdate]>::to_vec)
            .collect()
    }
}

/// Extracts a graph's edge list in deterministic (CSR) order.
fn edge_list(g: &CsrGraph) -> Vec<(u32, u32, f32)> {
    let mut edges = Vec::with_capacity(g.num_edges());
    for v in g.vertices() {
        for e in g.out_edges(v) {
            edges.push((v.get(), e.other.get(), e.weight));
        }
    }
    edges
}

/// Generates the test case fully determined by `seed`.
pub fn generate(seed: u64) -> TestCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let algo = AlgoKind::ALL[rng.gen_range(0..AlgoKind::ALL.len())];
    let n = rng.gen_range(8..64usize);
    let m = n * rng.gen_range(2..6usize);
    let weights = if algo.weighted() {
        WeightMode::Uniform(0.5, 4.0)
    } else {
        WeightMode::Unweighted
    };
    let graph_seed = rng.next_u64();
    let graph = match rng.gen_range(0..3usize) {
        // R-MAT: the paper's synthetic-input family.
        0 => rmat(
            &RmatConfig::graph500(n, m).with_weights(weights),
            graph_seed,
        ),
        // Degree-skewed preferential attachment.
        1 => barabasi_albert(n, (m / n).clamp(1, n - 1), weights, graph_seed),
        // Uniform as a control.
        _ => erdos_renyi(n, m, weights, graph_seed),
    };

    let machine = MachineParams {
        processors: rng.gen_range(1..4usize),
        gen_streams: rng.gen_range(1..4usize),
        queue_bins: 1 << rng.gen_range(0..3u32),
        queue_rows: rng.gen_range(4..32usize),
        queue_cols: 1 << rng.gen_range(0..4u32),
        coalescer_depth: rng.gen_range(1..6u64),
        prefetch: rng.gen_bool(0.5),
        occupancy_first: rng.gen_bool(0.5),
        single_channel_dram: rng.gen_bool(0.5),
        epoch_cycles: [32, 128, 1024][rng.gen_range(0..3usize)],
        forced_shards: rng.gen_range(0..4usize),
    };

    // Draw the update stream against an overlay that tracks the applied
    // prefix, so deletes mostly hit edges that actually exist.
    let batch_size = rng.gen_range(4..17usize);
    let batches = rng.gen_range(1..4usize);
    let mut stream = UpdateStream::new(n, 0.3, weights, rng.next_u64());
    let mut probe = OverlayGraph::new(graph.clone());
    let mut updates = Vec::new();
    for _ in 0..batches {
        let batch = stream.next_batch(&probe, batch_size);
        probe.apply(&batch);
        updates.extend(batch);
    }

    let root = rng.gen_range(0..n as u32);
    TestCase {
        vertices: n,
        edges: edge_list(&graph),
        algo,
        root,
        aux_seed: rng.next_u64(),
        updates,
        batch_size,
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20u64 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.updates.len(), b.updates.len());
            assert_eq!(a.build_graph(), b.build_graph());
        }
    }

    #[test]
    fn generated_graphs_and_configs_are_valid() {
        for seed in 0..40u64 {
            let c = generate(seed);
            let g = c.build_graph();
            g.check_invariants().unwrap();
            assert_eq!(g.num_vertices(), c.vertices);
            assert_eq!(g.is_weighted(), c.algo.weighted());
            c.machine.to_config().validate().unwrap();
            assert!(c.clamped_root().index() < c.vertices);
        }
    }

    #[test]
    fn all_algorithms_and_graph_families_appear() {
        let mut seen = [false; 6];
        for seed in 0..64u64 {
            let c = generate(seed);
            let idx = AlgoKind::ALL.iter().position(|&k| k == c.algo).unwrap();
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn update_batches_respect_vertex_range() {
        let mut c = generate(3);
        c.vertices = 4; // shrink-style truncation
        for batch in c.update_batches() {
            for u in batch {
                match u {
                    EdgeUpdate::Insert { src, dst, .. } | EdgeUpdate::Delete { src, dst } => {
                        assert!(src.get() < 4 && dst.get() < 4);
                    }
                }
            }
        }
    }
}
