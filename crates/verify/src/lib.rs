//! # gp-verify — differential fuzzing and invariant checking
//!
//! The workspace has five independent ways to compute the same
//! delta-accumulative fixed point: the sequential golden engine
//! (`gp_algorithms::engine::run_sequential`), the cycle-level accelerator
//! ([`graphpulse_core::GraphPulse::run`]), the shard-parallel engine
//! ([`graphpulse_core::GraphPulse::run_parallel`]), the incremental
//! engine over the CSR overlay ([`gp_stream::IncrementalEngine`]), and the
//! speed-first turbo engine ([`gp_turbo::run_turbo`]). This crate
//! cross-checks all of them on randomized inputs, deterministically:
//!
//! * [`case`] — random test cases (R-MAT / degree-skewed / uniform graphs,
//!   randomized machine geometries, insert/delete update streams), fully
//!   determined by a single `u64` seed;
//! * [`oracle`] — the differential oracle plus metamorphic checks
//!   (vertex-relabeling invariance, edge-order-permutation invariance,
//!   slice-count invariance) and the micro-architectural invariants
//!   (event conservation, DRAM protocol legality, cache accounting);
//! * [`invariants`] — standalone micro-fuzzers for the memory models;
//! * [`mod@shrink`] — a greedy shrinker that reduces a failing case to a
//!   minimal repro and renders it as a ready-to-paste regression test;
//! * [`fuzz`] — the driver loop behind the `fuzz` binary in `gp-bench`
//!   (`cargo run -p gp-bench --bin fuzz -- --seed 7 --iters 50`).
//!
//! Everything is seeded through `gp_sim::rng` — two runs with the same seed
//! produce byte-identical logs on every platform.
//!
//! # Examples
//!
//! ```
//! use gp_verify::{generate, run_case};
//!
//! let case = generate(7);
//! run_case(&case, None).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod fuzz;
pub mod invariants;
pub mod oracle;
pub mod shrink;

pub use case::{generate, AlgoKind, MachineParams, TestCase};
pub use fuzz::{run_fuzz, FuzzConfig, FuzzReport};
pub use oracle::{run_case, Failure, Fault};
pub use shrink::{regression_test, shrink};
