//! The differential oracle: five backends, three metamorphic checks, and
//! the micro-architectural invariants, applied to one [`TestCase`].
//!
//! Backends compared (all must agree within the algorithm's
//! [`comparison_tolerance`](gp_algorithms::DeltaAlgorithm::comparison_tolerance)):
//!
//! 1. the sequential golden engine (Algorithm 1 of the paper),
//! 2. the cycle-level accelerator, run twice to also pin determinism,
//! 3. the shard-parallel engine at 1, 2, and 4 workers — which must be not
//!    just within tolerance of golden but **bit-identical** to each other,
//! 4. the incremental engine over the overlay, after every update batch,
//!    against a from-scratch golden run on the updated graph,
//! 5. the turbo engine (speed-first, delta-prioritized draining), run
//!    twice to also pin its determinism.
//!
//! Metamorphic checks: vertex relabeling (values commute with the
//! permutation; for connected components, the partition does), edge-order
//! permutation (builder canonicalization makes the CSR identical), and
//! slice-count invariance (an undersized queue forcing `>= 2` slices must
//! not change the fixed point). Micro-invariants: strict event
//! conservation on single machines, bounded conservation on merged
//! parallel reports.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, DeltaAlgorithm,
    IncrementalAlgorithm, PageRankDelta, Sssp, Sswp,
};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, GraphBuilder, VertexId};
use gp_stream::{IncrementalEngine, StreamConfig};
use gp_turbo::{run_turbo, TurboConfig};
use graphpulse_core::GraphPulse;

use crate::case::{AlgoKind, TestCase};

/// Propagation threshold the oracle's accumulative algorithms run with.
pub const ORACLE_THRESHOLD: f64 = 1e-7;

/// Salt mixed into [`TestCase::aux_seed`] for Adsorption parameters.
const ADS_SALT: u64 = 0xAD50_0000_0000_0001;
/// Salt mixed into [`TestCase::aux_seed`] for metamorphic permutations.
const PERM_SALT: u64 = 0x9E3D_0000_0000_0002;

/// A deliberately injected defect, used to validate that the harness (and
/// its shrinker) actually detects divergences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Models a shard-inbox merge-order bug: after the single-worker
    /// parallel run, vertex 0's merged value is skewed before comparison.
    MergeSkew,
}

impl Fault {
    /// Parses a CLI spelling of a fault.
    pub fn parse(s: &str) -> Option<Fault> {
        match s {
            "merge-order" => Some(Fault::MergeSkew),
            _ => None,
        }
    }
}

/// One failed oracle check.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which check tripped (stable, log-friendly identifier).
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

fn fail(check: &'static str, detail: String) -> Failure {
    Failure { check, detail }
}

/// The metamorphic permutation of a case, derived from its aux seed.
fn metamorphic_perm(case: &TestCase) -> Vec<u32> {
    StdRng::seed_from_u64(case.aux_seed ^ PERM_SALT).permutation(case.vertices.max(1))
}

/// Symmetric closure of `g`: both directions of every edge, same weights.
fn symmetrize(g: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(g.num_vertices());
    b.weighted(g.is_weighted());
    b.symmetric(true);
    for v in g.vertices() {
        for e in g.out_edges(v) {
            b.add_edge(v, e.other, e.weight);
        }
    }
    b.build()
}

/// Runs every oracle leg on `case`. `fault` injects a deliberate defect
/// (see [`Fault`]) so the harness's own detection path can be exercised.
///
/// # Errors
///
/// Returns the first failed check.
pub fn run_case(case: &TestCase, fault: Option<Fault>) -> Result<(), Failure> {
    let g = case.build_graph();
    let perm = metamorphic_perm(case);
    let root = case.clamped_root();
    let new_root = VertexId::new(perm[root.index()]);
    match case.algo {
        AlgoKind::PageRank => {
            let algo = PageRankDelta::new(0.85, ORACLE_THRESHOLD);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &algo, &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Adsorption => {
            let params = AdsorptionParams::random(g.num_vertices(), case.aux_seed ^ ADS_SALT);
            let algo = Adsorption::new(params, ORACLE_THRESHOLD);
            // No relabel leg: the per-vertex parameters cannot be permuted
            // alongside the vertices from outside the algorithm. No
            // incremental leg: Adsorption is not an IncrementalAlgorithm
            // (normalized inbound weights do not survive edge updates).
            check_differential(case, &g, &algo, fault)?;
        }
        AlgoKind::Sssp => {
            let algo = Sssp::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Sssp::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Bfs => {
            let algo = Bfs::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Bfs::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Cc => {
            let algo = ConnectedComponents::new();
            check_differential(case, &g, &algo, fault)?;
            // Component labels are vertex ids, so relabeling changes the
            // values; what must be invariant is the partition itself — but
            // only on the symmetric closure. On a directed graph the label
            // is "largest id reaching v", and whether two vertices share it
            // depends on which reacher carries the largest id, which a
            // relabeling legitimately changes (e.g. a lone edge u -> v
            // merges labels iff id(u) > id(v)). Symmetrizing commutes with
            // relabeling and makes the partition the WCC partition, which
            // is permutation-invariant.
            check_relabel(&symmetrize(&g), &algo, &algo, &perm, true)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Sswp => {
            let algo = Sswp::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Sswp::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
    }
    check_edge_order(case, &g)
}

/// Compares `got` against `want` within `tol`, `INFINITY`-aware.
fn compare_values(
    check: &'static str,
    leg: &str,
    got: &[f64],
    want: &[f64],
    tol: f64,
) -> Result<(), Failure> {
    if got.len() != want.len() {
        return Err(fail(
            check,
            format!("{leg}: length {} vs golden {}", got.len(), want.len()),
        ));
    }
    let diff = max_abs_diff(got, want);
    if diff > tol {
        let v = (0..got.len())
            .find(|&i| {
                if got[i].is_infinite()
                    && want[i].is_infinite()
                    && got[i].signum() == want[i].signum()
                {
                    return false;
                }
                let d = (got[i] - want[i]).abs();
                d.is_nan() || d > tol
            })
            .unwrap_or(0);
        return Err(fail(
            check,
            format!(
                "{leg}: max |diff| {diff:e} > tolerance {tol:e} \
                 (first at vertex {v}: got {}, golden {})",
                got[v], want[v]
            ),
        ));
    }
    Ok(())
}

/// Golden ≡ accelerator ≡ parallel × {1, 2, 4 workers}, plus determinism,
/// event conservation, and slice-count invariance.
fn check_differential<A: DeltaAlgorithm>(
    case: &TestCase,
    g: &CsrGraph,
    algo: &A,
    fault: Option<Fault>,
) -> Result<(), Failure> {
    let tol = algo.comparison_tolerance();
    let golden = run_sequential(algo, g);

    // Turbo engine, twice: functional agreement of the speed-first backend
    // plus its bit-determinism (oracle leg 5).
    let turbo_cfg = TurboConfig::default();
    let t1 = run_turbo(algo, g, &turbo_cfg);
    let t2 = run_turbo(algo, g, &turbo_cfg);
    compare_values(
        "differential-turbo",
        "turbo",
        &t1.values,
        &golden.values,
        tol,
    )?;
    if t1
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(t2.values.iter().map(|v| v.to_bits()))
        || t1.events_processed != t2.events_processed
        || t1.events_generated != t2.events_generated
        || t1.rounds != t2.rounds
    {
        return Err(fail(
            "turbo-determinism",
            format!(
                "two identical turbo runs diverged \
                 (processed {} vs {}, generated {} vs {}, rounds {} vs {})",
                t1.events_processed,
                t2.events_processed,
                t1.events_generated,
                t2.events_generated,
                t1.rounds,
                t2.rounds
            ),
        ));
    }

    // Cycle-level accelerator, twice: functional agreement + determinism.
    let cfg = case.machine.to_config();
    let run = |label: &str| {
        GraphPulse::new(cfg.clone())
            .run(g, algo)
            .map_err(|e| fail("accelerator-run", format!("{label}: {e}")))
    };
    let first = run("first run")?;
    let second = run("second run")?;
    compare_values(
        "differential-accelerator",
        "accelerator",
        &first.values,
        &golden.values,
        tol,
    )?;
    if first
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(second.values.iter().map(|v| v.to_bits()))
        || first.report.cycles != second.report.cycles
        || first.report.edge_cache_hits != second.report.edge_cache_hits
        || first.report.edge_cache_misses != second.report.edge_cache_misses
    {
        return Err(fail(
            "accelerator-determinism",
            format!(
                "two identical runs diverged (cycles {} vs {}, cache {}/{} vs {}/{})",
                first.report.cycles,
                second.report.cycles,
                first.report.edge_cache_hits,
                first.report.edge_cache_misses,
                second.report.edge_cache_hits,
                second.report.edge_cache_misses
            ),
        ));
    }
    first
        .report
        .check_event_conservation(true)
        .map_err(|e| fail("event-conservation", format!("accelerator: {e}")))?;

    // Shard-parallel at 1/2/4 workers: within tolerance of golden, bounded
    // conservation, and bit-identical to each other.
    let mut parallel_cfg = cfg.clone();
    let capacity = parallel_cfg.queue.capacity().max(1);
    if parallel_cfg.parallel.shards > 0
        && g.num_vertices().div_ceil(parallel_cfg.parallel.shards) > capacity
    {
        parallel_cfg.parallel.shards = 0; // forced count would not fit a slice
    }
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut c = parallel_cfg.clone();
        c.parallel.workers = workers;
        let mut out = GraphPulse::new(c)
            .run_parallel(g, algo)
            .map_err(|e| fail("parallel-run", format!("{workers} workers: {e}")))?;
        if workers == 1 && fault == Some(Fault::MergeSkew) && !out.values.is_empty() {
            // Deliberate defect: skew the first merged value, as a
            // mis-ordered shard-0 inbox merge would.
            out.values[0] = if out.values[0].is_finite() {
                out.values[0] + 1.0
            } else {
                0.0
            };
        }
        compare_values(
            "differential-parallel",
            &format!("parallel ({workers} workers)"),
            &out.values,
            &golden.values,
            tol,
        )?;
        out.report
            .check_event_conservation(false)
            .map_err(|e| fail("event-conservation", format!("parallel merge: {e}")))?;
        outcomes.push((workers, out));
    }
    let (_, base) = &outcomes[0];
    for (workers, out) in &outcomes[1..] {
        let same_values = base
            .values
            .iter()
            .map(|v| v.to_bits())
            .eq(out.values.iter().map(|v| v.to_bits()));
        if !same_values
            || base.report.cycles != out.report.cycles
            || base.report.events_processed != out.report.events_processed
            || base.report.events_generated != out.report.events_generated
            || base.report.events_spilled != out.report.events_spilled
            || base.epochs != out.epochs
            || base.shards != out.shards
        {
            return Err(fail(
                "parallel-worker-invariance",
                format!(
                    "1 worker vs {workers} workers differ \
                     (cycles {} vs {}, epochs {} vs {}, values equal: {same_values})",
                    base.report.cycles, out.report.cycles, base.epochs, out.epochs
                ),
            ));
        }
    }

    // Slice-count invariance: shrink the queue until the graph needs >= 2
    // slices; the fixed point must not move.
    let row_slots = cfg.queue.bins * cfg.queue.cols;
    if g.num_vertices() >= 2 * row_slots {
        let mut sliced = cfg.clone();
        sliced.queue.rows = g.num_vertices().div_ceil(2 * row_slots);
        let out = GraphPulse::new(sliced)
            .run(g, algo)
            .map_err(|e| fail("accelerator-run", format!("sliced run: {e}")))?;
        if out.report.slices < 2 {
            return Err(fail(
                "metamorphic-slice-count",
                format!(
                    "undersized queue still ran {} slice(s) for {} vertices",
                    out.report.slices,
                    g.num_vertices()
                ),
            ));
        }
        compare_values(
            "metamorphic-slice-count",
            &format!("{} slices", out.report.slices),
            &out.values,
            &golden.values,
            tol,
        )?;
        out.report
            .check_event_conservation(true)
            .map_err(|e| fail("event-conservation", format!("sliced run: {e}")))?;
    }
    Ok(())
}

/// Vertex-relabeling invariance: running `relabeled_algo` on the
/// isomorphic graph must commute with the permutation — by value for every
/// algorithm except connected components, whose labels are vertex ids and
/// must instead induce the same partition.
fn check_relabel<A: DeltaAlgorithm>(
    g: &CsrGraph,
    algo: &A,
    relabeled_algo: &A,
    perm: &[u32],
    as_partition: bool,
) -> Result<(), Failure> {
    let golden = run_sequential(algo, g).values;
    let relabeled = run_sequential(relabeled_algo, &g.relabel(perm)).values;
    if as_partition {
        // label(v) == label(w)  <=>  label'(perm(v)) == label'(perm(w)):
        // the value map golden -> relabeled must be a bijection.
        let mut forward: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut backward: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for v in 0..golden.len() {
            let a = golden[v].to_bits();
            let b = relabeled[perm[v] as usize].to_bits();
            if *forward.entry(a).or_insert(b) != b || *backward.entry(b).or_insert(a) != a {
                return Err(fail(
                    "metamorphic-relabel",
                    format!(
                        "partition differs at vertex {v}: label {} maps to {} \
                         inconsistently",
                        golden[v], relabeled[perm[v] as usize]
                    ),
                ));
            }
        }
        return Ok(());
    }
    let tol = algo.comparison_tolerance();
    let pulled: Vec<f64> = (0..golden.len())
        .map(|v| relabeled[perm[v] as usize])
        .collect();
    compare_values(
        "metamorphic-relabel",
        "relabeled run",
        &pulled,
        &golden,
        tol,
    )
}

/// Edge-order-permutation invariance: the builder canonicalizes adjacency,
/// so a shuffled edge list must produce the *identical* CSR (and therefore
/// identical behavior everywhere downstream).
fn check_edge_order(case: &TestCase, g: &CsrGraph) -> Result<(), Failure> {
    let mut shuffled = case.clone();
    StdRng::seed_from_u64(case.aux_seed ^ PERM_SALT).shuffle(&mut shuffled.edges);
    let g2 = shuffled.build_graph();
    if g2 != *g {
        return Err(fail(
            "metamorphic-edge-order",
            format!(
                "shuffled edge list built a different CSR \
                 ({} vs {} edges after canonicalization)",
                g2.num_edges(),
                g.num_edges()
            ),
        ));
    }
    Ok(())
}

/// Incremental-over-overlay ≡ from-scratch golden after every update
/// batch, plus a final cross-check against the accelerator on the fully
/// updated graph.
fn check_incremental<A>(case: &TestCase, g: &CsrGraph, algo: &A) -> Result<(), Failure>
where
    A: IncrementalAlgorithm + Clone,
{
    let tol = algo.comparison_tolerance();
    let (mut engine, _) =
        IncrementalEngine::new(algo.clone(), g.clone(), StreamConfig::golden(0.25))
            .map_err(|e| fail("incremental-run", format!("initial run: {e}")))?;
    compare_values(
        "differential-incremental",
        "initial convergence",
        &engine.values(),
        &run_sequential(algo, g).values,
        tol,
    )?;
    for (i, batch) in case.update_batches().into_iter().enumerate() {
        engine
            .apply_batch(&batch)
            .map_err(|e| fail("incremental-run", format!("batch {i}: {e}")))?;
        let scratch = run_sequential(algo, &engine.graph().to_csr());
        compare_values(
            "differential-incremental",
            &format!("after batch {i} ({} updates)", batch.len()),
            &engine.values(),
            &scratch.values,
            tol,
        )?;
    }
    // Tie the incremental leg back to the cycle-level model: the
    // accelerator on the final graph must agree with the warm state.
    let final_graph = engine.graph().to_csr();
    let out = GraphPulse::new(case.machine.to_config())
        .run(&final_graph, algo)
        .map_err(|e| fail("accelerator-run", format!("post-update run: {e}")))?;
    compare_values(
        "differential-incremental",
        "accelerator on updated graph",
        &out.values,
        &engine.values(),
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    #[test]
    fn clean_cases_pass_every_leg() {
        for seed in [1u64, 2, 3, 4, 5, 6] {
            let case = generate(seed);
            run_case(&case, None)
                .unwrap_or_else(|f| panic!("seed {seed} ({}) failed: {f}", case.algo.label()));
        }
    }

    #[test]
    fn injected_merge_skew_is_detected() {
        for seed in [1u64, 2, 3] {
            let case = generate(seed);
            let failure = run_case(&case, Some(Fault::MergeSkew))
                .expect_err("fault injection must be detected");
            assert_eq!(failure.check, "differential-parallel");
        }
    }

    #[test]
    fn fault_parse_round_trip() {
        assert_eq!(Fault::parse("merge-order"), Some(Fault::MergeSkew));
        assert_eq!(Fault::parse("nope"), None);
    }
}
