//! The differential oracle: five backends, three metamorphic checks, and
//! the micro-architectural invariants, applied to one [`TestCase`].
//!
//! Backends compared (all must agree within the algorithm's
//! [`comparison_tolerance`](gp_algorithms::DeltaAlgorithm::comparison_tolerance)):
//!
//! 1. the sequential golden engine (Algorithm 1 of the paper),
//! 2. the cycle-level accelerator, run twice to also pin determinism,
//! 3. the shard-parallel engine at 1, 2, and 4 workers — which must be not
//!    just within tolerance of golden but **bit-identical** to each other,
//! 4. the incremental engine over the overlay, after every update batch,
//!    against a from-scratch golden run on the updated graph,
//! 5. the turbo engine (speed-first, delta-prioritized draining), run
//!    twice to also pin its determinism.
//!
//! Metamorphic checks: vertex relabeling (values commute with the
//! permutation; for connected components, the partition does), edge-order
//! permutation (builder canonicalization makes the CSR identical), and
//! slice-count invariance (an undersized queue forcing `>= 2` slices must
//! not change the fixed point). Micro-invariants: strict event
//! conservation on single machines, bounded conservation on merged
//! parallel reports.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, DeltaAlgorithm,
    IncrementalAlgorithm, PageRankDelta, Sssp, Sswp,
};
use gp_chaos::{run_chaos, ChaosConfig, FaultPlan};
use gp_graph::container::write_container;
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, GraphBuilder, MappedCsr, VertexId};
use gp_mem::integrity::Storable;
use gp_stream::{IncrementalEngine, StreamConfig};
use gp_turbo::{run_turbo, StaleFault, TurboConfig};
use graphpulse_core::{GraphPulse, ParallelChaos, RunError};

use crate::case::{AlgoKind, TestCase};

/// Propagation threshold the oracle's accumulative algorithms run with.
pub const ORACLE_THRESHOLD: f64 = 1e-7;

/// Salt mixed into [`TestCase::aux_seed`] for Adsorption parameters.
const ADS_SALT: u64 = 0xAD50_0000_0000_0001;
/// Salt mixed into [`TestCase::aux_seed`] for metamorphic permutations.
const PERM_SALT: u64 = 0x9E3D_0000_0000_0002;

/// A deliberately injected defect, used to validate that the harness (and
/// its shrinker) actually detects divergences. This is the full
/// [`gp_chaos::FaultKind`] taxonomy: the legacy
/// [`Fault::MergeSkew`] is applied to the parallel leg's output (caught
/// differentially), while the event-, memory-, and backend-layer kinds
/// run through the chaos plane with recovery *disabled*, so the oracle
/// failure is the in-engine watchdog's own detection.
pub use gp_chaos::FaultKind as Fault;

/// One failed oracle check.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which check tripped (stable, log-friendly identifier).
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

fn fail(check: &'static str, detail: String) -> Failure {
    Failure { check, detail }
}

/// The metamorphic permutation of a case, derived from its aux seed.
fn metamorphic_perm(case: &TestCase) -> Vec<u32> {
    StdRng::seed_from_u64(case.aux_seed ^ PERM_SALT).permutation(case.vertices.max(1))
}

/// Symmetric closure of `g`: both directions of every edge, same weights.
fn symmetrize(g: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(g.num_vertices());
    b.weighted(g.is_weighted());
    b.symmetric(true);
    for v in g.vertices() {
        for e in g.out_edges(v) {
            b.add_edge(v, e.other, e.weight);
        }
    }
    b.build()
}

/// Runs every oracle leg on `case`. `fault` injects a deliberate defect
/// (see [`Fault`]) so the harness's own detection path can be exercised.
///
/// # Errors
///
/// Returns the first failed check.
pub fn run_case(case: &TestCase, fault: Option<Fault>) -> Result<(), Failure> {
    let g = case.build_graph();
    let perm = metamorphic_perm(case);
    let root = case.clamped_root();
    let new_root = VertexId::new(perm[root.index()]);
    match case.algo {
        AlgoKind::PageRank => {
            let algo = PageRankDelta::new(0.85, ORACLE_THRESHOLD);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &algo, &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Adsorption => {
            let params = AdsorptionParams::random(g.num_vertices(), case.aux_seed ^ ADS_SALT);
            let algo = Adsorption::new(params, ORACLE_THRESHOLD);
            // No relabel leg: the per-vertex parameters cannot be permuted
            // alongside the vertices from outside the algorithm. No
            // incremental leg: Adsorption is not an IncrementalAlgorithm
            // (normalized inbound weights do not survive edge updates).
            check_differential(case, &g, &algo, fault)?;
        }
        AlgoKind::Sssp => {
            let algo = Sssp::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Sssp::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Bfs => {
            let algo = Bfs::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Bfs::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Cc => {
            let algo = ConnectedComponents::new();
            check_differential(case, &g, &algo, fault)?;
            // Component labels are vertex ids, so relabeling changes the
            // values; what must be invariant is the partition itself — but
            // only on the symmetric closure. On a directed graph the label
            // is "largest id reaching v", and whether two vertices share it
            // depends on which reacher carries the largest id, which a
            // relabeling legitimately changes (e.g. a lone edge u -> v
            // merges labels iff id(u) > id(v)). Symmetrizing commutes with
            // relabeling and makes the partition the WCC partition, which
            // is permutation-invariant.
            check_relabel(&symmetrize(&g), &algo, &algo, &perm, true)?;
            check_incremental(case, &g, &algo)?;
        }
        AlgoKind::Sswp => {
            let algo = Sswp::new(root);
            check_differential(case, &g, &algo, fault)?;
            check_relabel(&g, &algo, &Sswp::new(new_root), &perm, false)?;
            check_incremental(case, &g, &algo)?;
        }
    }
    check_edge_order(case, &g)
}

/// Compares `got` against `want` within `tol`, `INFINITY`-aware.
fn compare_values(
    check: &'static str,
    leg: &str,
    got: &[f64],
    want: &[f64],
    tol: f64,
) -> Result<(), Failure> {
    if got.len() != want.len() {
        return Err(fail(
            check,
            format!("{leg}: length {} vs golden {}", got.len(), want.len()),
        ));
    }
    let diff = max_abs_diff(got, want);
    if diff > tol {
        let v = (0..got.len())
            .find(|&i| {
                if got[i].is_infinite()
                    && want[i].is_infinite()
                    && got[i].signum() == want[i].signum()
                {
                    return false;
                }
                let d = (got[i] - want[i]).abs();
                d.is_nan() || d > tol
            })
            .unwrap_or(0);
        return Err(fail(
            check,
            format!(
                "{leg}: max |diff| {diff:e} > tolerance {tol:e} \
                 (first at vertex {v}: got {}, golden {})",
                got[v], want[v]
            ),
        ));
    }
    Ok(())
}

/// Golden ≡ accelerator ≡ parallel × {1, 2, 4 workers} ≡ chaos executor,
/// plus determinism, event conservation, and slice-count invariance.
fn check_differential<A>(
    case: &TestCase,
    g: &CsrGraph,
    algo: &A,
    fault: Option<Fault>,
) -> Result<(), Failure>
where
    A: DeltaAlgorithm,
    A::Value: Storable,
{
    let tol = algo.comparison_tolerance();
    let golden = run_sequential(algo, g);

    // Out-of-core (oracle leg 7): the same engines over a mapped on-disk
    // container must be bit-exact with their resident runs.
    check_outofcore(g, algo)?;

    // Chaos executor (oracle leg 6): clean equivalence with golden, and —
    // under an injected fault — the in-engine watchdogs' detection.
    check_chaos(case, g, algo, fault)?;

    // Turbo engine, twice: functional agreement of the speed-first backend
    // plus its bit-determinism (oracle leg 5).
    let turbo_cfg = TurboConfig::default();
    let t1 = run_turbo(algo, g, &turbo_cfg);
    let t2 = run_turbo(algo, g, &turbo_cfg);
    compare_values(
        "differential-turbo",
        "turbo",
        &t1.values,
        &golden.values,
        tol,
    )?;
    if t1
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(t2.values.iter().map(|v| v.to_bits()))
        || t1.events_processed != t2.events_processed
        || t1.events_generated != t2.events_generated
        || t1.rounds != t2.rounds
    {
        return Err(fail(
            "turbo-determinism",
            format!(
                "two identical turbo runs diverged \
                 (processed {} vs {}, generated {} vs {}, rounds {} vs {})",
                t1.events_processed,
                t2.events_processed,
                t1.events_generated,
                t2.events_generated,
                t1.rounds,
                t2.rounds
            ),
        ));
    }

    // Sharded turbo (oracle leg: differential-turbo-sharded): the vertex-
    // sharded engine must be bit-identical to the single-shard run at
    // every shard count — values and every counter — because the global
    // round schedule and the canonical (bucket, shard, seq) merge are
    // functions of the key sequence alone, not of the partition.
    for shards in [2usize, 4] {
        let ts = run_turbo(
            algo,
            g,
            &TurboConfig {
                shards,
                ..turbo_cfg
            },
        );
        if ts
            .values
            .iter()
            .map(|v| v.to_bits())
            .ne(t1.values.iter().map(|v| v.to_bits()))
            || ts.events_processed != t1.events_processed
            || ts.events_generated != t1.events_generated
            || ts.events_coalesced != t1.events_coalesced
            || ts.stale_entries != t1.stale_entries
            || ts.reschedules != t1.reschedules
            || ts.overflow_handoffs != t1.overflow_handoffs
            || ts.rounds != t1.rounds
        {
            return Err(fail(
                "differential-turbo-sharded",
                format!(
                    "turbo at {shards} shards diverged from single-shard \
                     (processed {} vs {}, generated {} vs {}, stale {} vs {}, \
                     rounds {} vs {}, max |value diff| {:e})",
                    ts.events_processed,
                    t1.events_processed,
                    ts.events_generated,
                    t1.events_generated,
                    ts.stale_entries,
                    t1.stale_entries,
                    ts.rounds,
                    t1.rounds,
                    gp_algorithms::max_abs_diff(&ts.values, &t1.values),
                ),
            ));
        }
    }

    // Cycle-level accelerator, twice: functional agreement + determinism.
    let cfg = case.machine.to_config();
    let run = |label: &str| {
        GraphPulse::new(cfg.clone())
            .run(g, algo)
            .map_err(|e| fail("accelerator-run", format!("{label}: {e}")))
    };
    let first = run("first run")?;
    let second = run("second run")?;
    compare_values(
        "differential-accelerator",
        "accelerator",
        &first.values,
        &golden.values,
        tol,
    )?;
    if first
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(second.values.iter().map(|v| v.to_bits()))
        || first.report.cycles != second.report.cycles
        || first.report.edge_cache_hits != second.report.edge_cache_hits
        || first.report.edge_cache_misses != second.report.edge_cache_misses
    {
        return Err(fail(
            "accelerator-determinism",
            format!(
                "two identical runs diverged (cycles {} vs {}, cache {}/{} vs {}/{})",
                first.report.cycles,
                second.report.cycles,
                first.report.edge_cache_hits,
                first.report.edge_cache_misses,
                second.report.edge_cache_hits,
                second.report.edge_cache_misses
            ),
        ));
    }
    first
        .report
        .check_event_conservation(true)
        .map_err(|e| fail("event-conservation", format!("accelerator: {e}")))?;

    // Shard-parallel at 1/2/4 workers: within tolerance of golden, bounded
    // conservation, and bit-identical to each other.
    let mut parallel_cfg = cfg.clone();
    let capacity = parallel_cfg.queue.capacity().max(1);
    if parallel_cfg.parallel.shards > 0
        && g.num_vertices().div_ceil(parallel_cfg.parallel.shards) > capacity
    {
        parallel_cfg.parallel.shards = 0; // forced count would not fit a slice
    }
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut c = parallel_cfg.clone();
        c.parallel.workers = workers;
        let mut out = GraphPulse::new(c)
            .run_parallel(g, algo)
            .map_err(|e| fail("parallel-run", format!("{workers} workers: {e}")))?;
        if workers == 1 && fault == Some(Fault::MergeSkew) && !out.values.is_empty() {
            // Deliberate defect: skew the first merged value, as a
            // mis-ordered shard-0 inbox merge would.
            out.values[0] = if out.values[0].is_finite() {
                out.values[0] + 1.0
            } else {
                0.0
            };
        }
        compare_values(
            "differential-parallel",
            &format!("parallel ({workers} workers)"),
            &out.values,
            &golden.values,
            tol,
        )?;
        out.report
            .check_event_conservation(false)
            .map_err(|e| fail("event-conservation", format!("parallel merge: {e}")))?;
        outcomes.push((workers, out));
    }
    let (_, base) = &outcomes[0];
    for (workers, out) in &outcomes[1..] {
        let same_values = base
            .values
            .iter()
            .map(|v| v.to_bits())
            .eq(out.values.iter().map(|v| v.to_bits()));
        if !same_values
            || base.report.cycles != out.report.cycles
            || base.report.events_processed != out.report.events_processed
            || base.report.events_generated != out.report.events_generated
            || base.report.events_spilled != out.report.events_spilled
            || base.epochs != out.epochs
            || base.shards != out.shards
        {
            return Err(fail(
                "parallel-worker-invariance",
                format!(
                    "1 worker vs {workers} workers differ \
                     (cycles {} vs {}, epochs {} vs {}, values equal: {same_values})",
                    base.report.cycles, out.report.cycles, base.epochs, out.epochs
                ),
            ));
        }
    }

    // Slice-count invariance: shrink the queue until the graph needs >= 2
    // slices; the fixed point must not move.
    let row_slots = cfg.queue.bins * cfg.queue.cols;
    if g.num_vertices() >= 2 * row_slots {
        let mut sliced = cfg.clone();
        sliced.queue.rows = g.num_vertices().div_ceil(2 * row_slots);
        let out = GraphPulse::new(sliced)
            .run(g, algo)
            .map_err(|e| fail("accelerator-run", format!("sliced run: {e}")))?;
        if out.report.slices < 2 {
            return Err(fail(
                "metamorphic-slice-count",
                format!(
                    "undersized queue still ran {} slice(s) for {} vertices",
                    out.report.slices,
                    g.num_vertices()
                ),
            ));
        }
        compare_values(
            "metamorphic-slice-count",
            &format!("{} slices", out.report.slices),
            &out.values,
            &golden.values,
            tol,
        )?;
        out.report
            .check_event_conservation(true)
            .map_err(|e| fail("event-conservation", format!("sliced run: {e}")))?;
    }
    Ok(())
}

/// The out-of-core oracle leg (`differential-outofcore`): the case's graph
/// is serialized to an on-disk container, reopened through [`MappedCsr`]
/// with full checksum verification, and the golden engine and turbo are
/// re-run against the mapping. Because the mapped segments are
/// bit-identical to the resident arrays and both engines are generic over
/// `GraphView`, the comparison is **bit-exact** — values and event
/// counters — not merely within tolerance; any divergence means the
/// container codec, the mapping, or its accessors corrupted adjacency.
/// A small vertex cap forces a multi-slice index on all but trivial cases
/// so the stored slice extents get exercised too.
fn check_outofcore<A>(g: &CsrGraph, algo: &A) -> Result<(), Failure>
where
    A: DeltaAlgorithm,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    let path = std::env::temp_dir().join(format!(
        "gp-oracle-ooc-{}-{}.gpc",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _cleanup = Cleanup(path.clone());
    let cap = (g.num_vertices() / 2).max(1);
    write_container(g, &path, cap)
        .map_err(|e| fail("differential-outofcore", format!("write failed: {e}")))?;
    let mapped = MappedCsr::open_verified(&path)
        .map_err(|e| fail("differential-outofcore", format!("open failed: {e}")))?;
    if mapped.to_csr() != *g {
        return Err(fail(
            "differential-outofcore",
            "re-materialized container is not the resident graph".into(),
        ));
    }

    let golden = run_sequential(algo, g);
    let ooc = run_sequential(algo, &mapped);
    if ooc
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(golden.values.iter().map(|v| v.to_bits()))
        || ooc.events_processed != golden.events_processed
        || ooc.events_generated != golden.events_generated
    {
        return Err(fail(
            "differential-outofcore",
            format!(
                "golden over the mapped container is not bit-exact with resident \
                 (processed {} vs {}, generated {} vs {}, max |diff| {:e})",
                ooc.events_processed,
                golden.events_processed,
                ooc.events_generated,
                golden.events_generated,
                max_abs_diff(&ooc.values, &golden.values)
            ),
        ));
    }

    let tcfg = TurboConfig::default();
    let t_resident = run_turbo(algo, g, &tcfg);
    let t_mapped = run_turbo(algo, &mapped, &tcfg);
    if t_mapped
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(t_resident.values.iter().map(|v| v.to_bits()))
        || t_mapped.events_processed != t_resident.events_processed
        || t_mapped.events_generated != t_resident.events_generated
        || t_mapped.rounds != t_resident.rounds
    {
        return Err(fail(
            "differential-outofcore",
            format!(
                "turbo over the mapped container diverged from its resident run \
                 (processed {} vs {}, rounds {} vs {}, max |diff| {:e})",
                t_mapped.events_processed,
                t_resident.events_processed,
                t_mapped.rounds,
                t_resident.rounds,
                max_abs_diff(&t_mapped.values, &t_resident.values)
            ),
        ));
    }
    Ok(())
}

/// The chaos-plane oracle leg. With no fault (or the differential-only
/// [`Fault::MergeSkew`]): [`run_chaos`] with detection enabled and
/// recovery disabled must be bit-exact with the golden engine — values
/// *and* event counters — with no watchdog firing (pinning the detectors'
/// false-positive rate at zero). With an injected chaos-plane fault:
/// recovery stays disabled, so a fired fault must surface as an in-engine
/// detection (returned as the oracle failure the shrinker minimizes); a
/// fault that never fired or self-healed must leave the result at the
/// golden fixed point — silent corruption is the one unacceptable
/// outcome.
fn check_chaos<A>(
    case: &TestCase,
    g: &CsrGraph,
    algo: &A,
    fault: Option<Fault>,
) -> Result<(), Failure>
where
    A: DeltaAlgorithm,
    A::Value: Storable,
{
    let tol = algo.comparison_tolerance();
    let golden = run_sequential(algo, g);
    let cfg = ChaosConfig {
        epoch_events: 16,
        max_retries: 0,
        degrade: false,
        ..ChaosConfig::default()
    };

    let clean = run_chaos(algo, g, None, &cfg);
    if let Some(d) = clean.detections.first() {
        return Err(fail(
            "chaos-false-positive",
            format!(
                "watchdog fired on a fault-free run: {} ({})",
                d.detector.label(),
                d.message
            ),
        ));
    }
    if clean
        .values
        .iter()
        .map(|v| v.to_bits())
        .ne(golden.values.iter().map(|v| v.to_bits()))
        || clean.events_processed != golden.events_processed
        || clean.events_generated != golden.events_generated
    {
        return Err(fail(
            "differential-chaos",
            format!(
                "clean chaos run is not bit-exact with golden \
                 (processed {} vs {}, generated {} vs {}, max |diff| {:e})",
                clean.events_processed,
                golden.events_processed,
                clean.events_generated,
                golden.events_generated,
                max_abs_diff(&clean.values, &golden.values)
            ),
        ));
    }

    match fault {
        Some(
            kind @ (Fault::DropEvent | Fault::DuplicateEvent | Fault::DelayEvent | Fault::BitFlip),
        ) => {
            let plan = FaultPlan::transient(kind, case.aux_seed);
            let out = run_chaos(algo, g, Some(plan), &cfg);
            if let Some(d) = out.detections.first() {
                return Err(fail(
                    "chaos-detection",
                    format!(
                        "injected {kind} detected by {}: {}",
                        d.detector.label(),
                        d.message
                    ),
                ));
            }
            // The trigger landed beyond the run (tiny case): the fault
            // never fired, so the fixed point must be untouched.
            compare_values(
                "chaos-silent-corruption",
                &format!("undetected {kind}"),
                &out.values,
                &golden.values,
                tol,
            )
        }
        Some(Fault::ShardStall) => {
            let mut pcfg = case.machine.to_config();
            let capacity = pcfg.queue.capacity().max(1);
            if pcfg.parallel.shards > 0
                && g.num_vertices().div_ceil(pcfg.parallel.shards) > capacity
            {
                pcfg.parallel.shards = 0;
            }
            let gp = GraphPulse::new(pcfg);
            let clean_epochs = gp
                .run_parallel(g, algo)
                .map_err(|e| fail("parallel-run", format!("clean run for stall leg: {e}")))?
                .epochs;
            let budget = clean_epochs + 8;
            let chaos = ParallelChaos {
                stall: Some((0, budget + 32)),
                epoch_budget: Some(budget),
            };
            match gp.run_parallel_chaos(g, algo, chaos) {
                Err(RunError::EpochBudget(b)) => Err(fail(
                    "chaos-detection",
                    format!(
                        "injected shard-stall detected: {}",
                        RunError::EpochBudget(b)
                    ),
                )),
                Err(e) => Err(fail("parallel-run", format!("stalled run: {e}"))),
                Ok(out) => compare_values(
                    "chaos-silent-corruption",
                    "undetected shard-stall",
                    &out.values,
                    &golden.values,
                    tol,
                ),
            }
        }
        Some(Fault::WheelStale) => {
            let tcfg = TurboConfig::default();
            let clean_rounds = run_turbo(algo, g, &tcfg).rounds;
            let faulted = TurboConfig {
                fault: Some(StaleFault {
                    after_rounds: clean_rounds.saturating_sub(2).max(1),
                    pick: case.aux_seed % 8,
                }),
                ..tcfg
            };
            let out = run_turbo(algo, g, &faulted);
            match out.check_lost_events() {
                Err(msg) => Err(fail(
                    "chaos-detection",
                    format!("injected wheel-stale detected: {msg}"),
                )),
                // The corrupted entry was healed by a later redeposit:
                // nothing was lost, so the fixed point must be untouched.
                Ok(()) => compare_values(
                    "chaos-silent-corruption",
                    "healed wheel-stale",
                    &out.values,
                    &golden.values,
                    tol,
                ),
            }
        }
        Some(Fault::MergeSkew) | None => Ok(()),
    }
}

/// Vertex-relabeling invariance: running `relabeled_algo` on the
/// isomorphic graph must commute with the permutation — by value for every
/// algorithm except connected components, whose labels are vertex ids and
/// must instead induce the same partition.
fn check_relabel<A: DeltaAlgorithm>(
    g: &CsrGraph,
    algo: &A,
    relabeled_algo: &A,
    perm: &[u32],
    as_partition: bool,
) -> Result<(), Failure> {
    let golden = run_sequential(algo, g).values;
    let relabeled = run_sequential(relabeled_algo, &g.relabel(perm)).values;
    if as_partition {
        // label(v) == label(w)  <=>  label'(perm(v)) == label'(perm(w)):
        // the value map golden -> relabeled must be a bijection.
        let mut forward: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut backward: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for v in 0..golden.len() {
            let a = golden[v].to_bits();
            let b = relabeled[perm[v] as usize].to_bits();
            if *forward.entry(a).or_insert(b) != b || *backward.entry(b).or_insert(a) != a {
                return Err(fail(
                    "metamorphic-relabel",
                    format!(
                        "partition differs at vertex {v}: label {} maps to {} \
                         inconsistently",
                        golden[v], relabeled[perm[v] as usize]
                    ),
                ));
            }
        }
        return Ok(());
    }
    let tol = algo.comparison_tolerance();
    let pulled: Vec<f64> = (0..golden.len())
        .map(|v| relabeled[perm[v] as usize])
        .collect();
    compare_values(
        "metamorphic-relabel",
        "relabeled run",
        &pulled,
        &golden,
        tol,
    )
}

/// Edge-order-permutation invariance: the builder canonicalizes adjacency,
/// so a shuffled edge list must produce the *identical* CSR (and therefore
/// identical behavior everywhere downstream).
fn check_edge_order(case: &TestCase, g: &CsrGraph) -> Result<(), Failure> {
    let mut shuffled = case.clone();
    StdRng::seed_from_u64(case.aux_seed ^ PERM_SALT).shuffle(&mut shuffled.edges);
    let g2 = shuffled.build_graph();
    if g2 != *g {
        return Err(fail(
            "metamorphic-edge-order",
            format!(
                "shuffled edge list built a different CSR \
                 ({} vs {} edges after canonicalization)",
                g2.num_edges(),
                g.num_edges()
            ),
        ));
    }
    Ok(())
}

/// Incremental-over-overlay ≡ from-scratch golden after every update
/// batch, plus a final cross-check against the accelerator on the fully
/// updated graph.
fn check_incremental<A>(case: &TestCase, g: &CsrGraph, algo: &A) -> Result<(), Failure>
where
    A: IncrementalAlgorithm + Clone,
{
    let tol = algo.comparison_tolerance();
    let (mut engine, _) =
        IncrementalEngine::new(algo.clone(), g.clone(), StreamConfig::golden(0.25))
            .map_err(|e| fail("incremental-run", format!("initial run: {e}")))?;
    compare_values(
        "differential-incremental",
        "initial convergence",
        &engine.values(),
        &run_sequential(algo, g).values,
        tol,
    )?;
    for (i, batch) in case.update_batches().into_iter().enumerate() {
        engine
            .apply_batch(&batch)
            .map_err(|e| fail("incremental-run", format!("batch {i}: {e}")))?;
        let scratch = run_sequential(algo, &engine.graph().to_csr());
        compare_values(
            "differential-incremental",
            &format!("after batch {i} ({} updates)", batch.len()),
            &engine.values(),
            &scratch.values,
            tol,
        )?;
    }
    // Tie the incremental leg back to the cycle-level model: the
    // accelerator on the final graph must agree with the warm state.
    let final_graph = engine.graph().to_csr();
    let out = GraphPulse::new(case.machine.to_config())
        .run(&final_graph, algo)
        .map_err(|e| fail("accelerator-run", format!("post-update run: {e}")))?;
    compare_values(
        "differential-incremental",
        "accelerator on updated graph",
        &out.values,
        &engine.values(),
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    #[test]
    fn clean_cases_pass_every_leg() {
        for seed in [1u64, 2, 3, 4, 5, 6] {
            let case = generate(seed);
            run_case(&case, None)
                .unwrap_or_else(|f| panic!("seed {seed} ({}) failed: {f}", case.algo.label()));
        }
    }

    #[test]
    fn injected_merge_skew_is_detected() {
        for seed in [1u64, 2, 3] {
            let case = generate(seed);
            let failure = run_case(&case, Some(Fault::MergeSkew))
                .expect_err("fault injection must be detected");
            assert_eq!(failure.check, "differential-parallel");
        }
    }

    #[test]
    fn fault_parse_round_trip() {
        for kind in Fault::ALL {
            assert_eq!(Fault::parse(kind.label()), Some(kind));
        }
        assert_eq!(Fault::parse("merge-order"), Some(Fault::MergeSkew));
        assert_eq!(Fault::parse("nope"), None);
    }

    /// Every chaos-plane fault kind is caught — as an in-engine detection
    /// (`chaos-detection`) on the seeds where the trigger fires, and never
    /// as silent corruption anywhere.
    #[test]
    fn injected_chaos_faults_are_detected_in_engine() {
        for kind in [
            Fault::DropEvent,
            Fault::DuplicateEvent,
            Fault::DelayEvent,
            Fault::BitFlip,
            Fault::ShardStall,
            Fault::WheelStale,
        ] {
            let mut detected = 0;
            for seed in 1u64..=6 {
                let case = generate(seed);
                // An Ok(()) here is legal: the trigger never fired or the
                // fault healed before the fixed point.
                if let Err(f) = run_case(&case, Some(kind)) {
                    assert_eq!(
                        f.check, "chaos-detection",
                        "{kind} on seed {seed} failed the wrong check: {f}"
                    );
                    detected += 1;
                }
            }
            assert!(detected > 0, "{kind} was never detected across 6 seeds");
        }
    }
}
