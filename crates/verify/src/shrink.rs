//! Greedy shrinking of failing cases to minimal repros.
//!
//! The shrinker repeatedly tries simplifications that keep the case
//! failing — removing update chunks, removing edge chunks, truncating the
//! vertex set, and flattening weights — until a fixpoint (or an evaluation
//! budget) is reached. The result is rendered by [`regression_test`] as a
//! ready-to-paste `#[test]` reconstructing the case literally.

use gp_graph::EdgeUpdate;

use crate::case::TestCase;
use crate::oracle::{run_case, Failure, Fault};

/// Maximum number of oracle evaluations one shrink is allowed.
const MAX_EVALS: usize = 400;

struct Shrinker {
    fault: Option<Fault>,
    evals: usize,
    last_failure: Failure,
}

impl Shrinker {
    /// Whether `case` still fails; remembers the failure so the final
    /// repro carries an up-to-date diagnosis.
    fn still_fails(&mut self, case: &TestCase) -> bool {
        if self.evals >= MAX_EVALS {
            return false;
        }
        self.evals += 1;
        match run_case(case, self.fault) {
            Err(f) => {
                self.last_failure = f;
                true
            }
            Ok(()) => false,
        }
    }

    /// ddmin-style chunked removal from a list accessed through `get`/`set`.
    fn minimize_list<T: Clone>(
        &mut self,
        case: &mut TestCase,
        get: fn(&TestCase) -> &Vec<T>,
        set: fn(&mut TestCase, Vec<T>),
    ) -> bool {
        let mut changed = false;
        let mut chunk = get(case).len().div_ceil(2).max(1);
        loop {
            let mut start = 0;
            while start < get(case).len() {
                let items = get(case);
                let end = (start + chunk).min(items.len());
                let mut candidate: Vec<T> = Vec::with_capacity(items.len() - (end - start));
                candidate.extend_from_slice(&items[..start]);
                candidate.extend_from_slice(&items[end..]);
                let mut trial = case.clone();
                set(&mut trial, candidate);
                if self.still_fails(&trial) {
                    *case = trial;
                    changed = true;
                    // Same start now addresses the next window.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        changed
    }

    /// Truncates the vertex set to `keep` vertices, dropping out-of-range
    /// edges/updates and clamping the root.
    fn truncated(case: &TestCase, keep: usize) -> TestCase {
        let keep = keep.max(1);
        let n = keep as u32;
        let mut t = case.clone();
        t.vertices = keep;
        t.edges.retain(|&(s, d, _)| s < n && d < n);
        t.updates.retain(|u| match *u {
            EdgeUpdate::Insert { src, dst, .. } | EdgeUpdate::Delete { src, dst } => {
                src.get() < n && dst.get() < n
            }
        });
        t.root = t.root.min(n - 1);
        t
    }

    fn shrink_vertices(&mut self, case: &mut TestCase) -> bool {
        let mut changed = false;
        loop {
            let n = case.vertices;
            if n <= 1 {
                break;
            }
            // Halve aggressively, then trim one vertex at a time.
            let half = Self::truncated(case, n / 2);
            if self.still_fails(&half) {
                *case = half;
                changed = true;
                continue;
            }
            let minus_one = Self::truncated(case, n - 1);
            if self.still_fails(&minus_one) {
                *case = minus_one;
                changed = true;
                continue;
            }
            break;
        }
        changed
    }

    /// Flattens all weights to `1.0` (one attempt — weights rarely matter).
    fn shrink_weights(&mut self, case: &mut TestCase) -> bool {
        if !case.algo.weighted() {
            return false;
        }
        let mut trial = case.clone();
        for e in &mut trial.edges {
            e.2 = 1.0;
        }
        for u in &mut trial.updates {
            if let EdgeUpdate::Insert { weight, .. } = u {
                *weight = 1.0;
            }
        }
        if trial.edges == case.edges && trial.updates == case.updates {
            return false;
        }
        if self.still_fails(&trial) {
            *case = trial;
            return true;
        }
        false
    }
}

/// Greedily shrinks `case` (known to fail under `fault`) to a smaller one
/// that still fails, returning it with its (possibly different) failure.
pub fn shrink(case: &TestCase, fault: Option<Fault>, failure: &Failure) -> (TestCase, Failure) {
    let mut s = Shrinker {
        fault,
        evals: 0,
        last_failure: failure.clone(),
    };
    let mut best = case.clone();
    loop {
        let mut changed = false;
        changed |= s.minimize_list(&mut best, |c| &c.updates, |c, v| c.updates = v);
        changed |= s.shrink_vertices(&mut best);
        changed |= s.minimize_list(&mut best, |c| &c.edges, |c, v| c.edges = v);
        changed |= s.shrink_weights(&mut best);
        if !changed || s.evals >= MAX_EVALS {
            break;
        }
    }
    (best, s.last_failure)
}

fn render_update(u: &EdgeUpdate) -> String {
    match *u {
        EdgeUpdate::Insert { src, dst, weight } => format!(
            "gp_graph::EdgeUpdate::Insert {{ src: gp_graph::VertexId::new({}), \
             dst: gp_graph::VertexId::new({}), weight: {weight:?} }}",
            src.get(),
            dst.get()
        ),
        EdgeUpdate::Delete { src, dst } => format!(
            "gp_graph::EdgeUpdate::Delete {{ src: gp_graph::VertexId::new({}), \
             dst: gp_graph::VertexId::new({}) }}",
            src.get(),
            dst.get()
        ),
    }
}

/// Renders `case` as a ready-to-paste regression test that rebuilds it
/// literally and asserts the oracle passes.
pub fn regression_test(case: &TestCase, fault: Option<Fault>, failure: &Failure) -> String {
    let edges = case
        .edges
        .iter()
        .map(|&(s, d, w)| format!("({s}, {d}, {w:?})"))
        .collect::<Vec<_>>()
        .join(", ");
    let updates = case
        .updates
        .iter()
        .map(render_update)
        .collect::<Vec<_>>()
        .join(",\n            ");
    let m = &case.machine;
    let fault_note = match fault {
        Some(f) => format!("\n    // NOTE: originally failed under injected fault {f:?}."),
        None => String::new(),
    };
    format!(
        "#[test]\n\
         fn fuzz_regression() {{\n\
         \x20   // Shrunk repro; failing check was \"{check}\":\n\
         \x20   //   {detail}{fault_note}\n\
         \x20   let case = gp_verify::TestCase {{\n\
         \x20       vertices: {vertices},\n\
         \x20       edges: vec![{edges}],\n\
         \x20       algo: gp_verify::AlgoKind::{algo:?},\n\
         \x20       root: {root},\n\
         \x20       aux_seed: {aux_seed},\n\
         \x20       updates: vec![\n            {updates}\n        ],\n\
         \x20       batch_size: {batch_size},\n\
         \x20       machine: gp_verify::MachineParams {{\n\
         \x20           processors: {processors},\n\
         \x20           gen_streams: {gen_streams},\n\
         \x20           queue_bins: {queue_bins},\n\
         \x20           queue_rows: {queue_rows},\n\
         \x20           queue_cols: {queue_cols},\n\
         \x20           coalescer_depth: {coalescer_depth},\n\
         \x20           prefetch: {prefetch},\n\
         \x20           occupancy_first: {occupancy_first},\n\
         \x20           single_channel_dram: {single_channel_dram},\n\
         \x20           epoch_cycles: {epoch_cycles},\n\
         \x20           forced_shards: {forced_shards},\n\
         \x20       }},\n\
         \x20   }};\n\
         \x20   gp_verify::run_case(&case, None).unwrap();\n\
         }}\n",
        check = failure.check,
        detail = failure.detail,
        vertices = case.vertices,
        algo = case.algo,
        root = case.root,
        aux_seed = case.aux_seed,
        batch_size = case.batch_size,
        processors = m.processors,
        gen_streams = m.gen_streams,
        queue_bins = m.queue_bins,
        queue_rows = m.queue_rows,
        queue_cols = m.queue_cols,
        coalescer_depth = m.coalescer_depth,
        prefetch = m.prefetch,
        occupancy_first = m.occupancy_first,
        single_channel_dram = m.single_channel_dram,
        epoch_cycles = m.epoch_cycles,
        forced_shards = m.forced_shards,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    #[test]
    fn injected_fault_shrinks_to_a_tiny_case() {
        let case = generate(11);
        let failure = run_case(&case, Some(Fault::MergeSkew)).expect_err("fault must fail");
        let (small, last) = shrink(&case, Some(Fault::MergeSkew), &failure);
        // MergeSkew perturbs vertex 0 unconditionally, so the minimal
        // repro is a near-empty case.
        assert!(small.vertices <= 32, "vertices: {}", small.vertices);
        assert!(small.edges.len() <= 4, "edges: {}", small.edges.len());
        assert!(small.updates.is_empty());
        assert!(run_case(&small, Some(Fault::MergeSkew)).is_err());
        assert_eq!(last.check, "differential-parallel");
    }

    #[test]
    fn regression_test_rendering_contains_the_case() {
        let case = generate(4);
        let failure = Failure {
            check: "example",
            detail: "detail".into(),
        };
        let code = regression_test(&case, None, &failure);
        assert!(code.contains("fn fuzz_regression()"));
        assert!(code.contains(&format!("vertices: {}", case.vertices)));
        assert!(code.contains("gp_verify::run_case(&case, None).unwrap();"));
        assert!(code.contains("example"));
    }

    #[test]
    fn shrinking_a_passing_case_is_identity() {
        let case = generate(1);
        assert!(run_case(&case, None).is_ok());
        // still_fails() is false everywhere, so nothing changes.
        let failure = Failure {
            check: "none",
            detail: String::new(),
        };
        let (same, _) = shrink(&case, None, &failure);
        assert_eq!(same.vertices, case.vertices);
        assert_eq!(same.edges, case.edges);
    }
}
