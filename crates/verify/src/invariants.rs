//! Micro-architectural invariant checkers for the memory models.
//!
//! These run a randomized workload directly against `gp-mem` and validate
//! the model from the outside:
//!
//! * [`check_dram_protocol`] — drives a [`MemorySystem`] with random
//!   traffic while command tracing is enabled, then replays the trace
//!   through [`gp_mem::check_protocol`]'s independent DDR timing model
//!   (tRCD/tCAS/tRP legality, bus/bank occupancy, row-buffer outcome
//!   consistency) and confirms no request was lost;
//! * [`check_cache_model`] — replays a random probe/fill trace against
//!   both [`Cache`] and a naive reference LRU model, requiring identical
//!   hit/miss outcomes, identical counters, identical residency, and
//!   structurally sound sets ([`Cache::check_invariants`]).

use gp_mem::{
    check_protocol, Cache, CacheConfig, DramConfig, MemRequest, MemorySystem, TrafficClass,
    LINE_BYTES,
};
use gp_sim::rng::{Rng, StdRng};
use gp_sim::Cycle;

/// Fuzzes the DRAM timing model and validates its command trace.
///
/// # Errors
///
/// Returns the first protocol or accounting violation.
pub fn check_dram_protocol(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = if rng.gen_bool(0.5) {
        DramConfig::paper()
    } else {
        DramConfig::single_channel()
    };
    cfg.queue_depth = rng.gen_range(2..16usize);
    cfg.sched_window = rng.gen_range(1..8usize);
    let mut mem = MemorySystem::new(cfg);
    mem.enable_trace();

    let classes = [
        TrafficClass::VertexRead,
        TrafficClass::EdgeRead,
        TrafficClass::Other,
    ];
    let total = 150usize;
    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut now = Cycle::ZERO;
    let mut guard = 0u32;
    while completed < total {
        if submitted < total && rng.gen_bool(0.7) {
            // Random strides mix row hits, misses, and bank conflicts.
            let addr = rng.gen_range(0..1u64 << 20);
            let bytes = [8u32, 24, 64, 96][rng.gen_range(0..4usize)];
            let class = classes[rng.gen_range(0..classes.len())];
            if mem
                .request(now, MemRequest::read(addr, bytes, class))
                .is_ok()
            {
                submitted += 1;
            }
        }
        mem.tick(now);
        while mem.pop_completion(now).is_some() {
            completed += 1;
        }
        now = now.next();
        guard += 1;
        if guard > 2_000_000 {
            return Err(format!(
                "DRAM workload wedged: {completed}/{submitted} completions after {guard} cycles"
            ));
        }
    }
    if !mem.is_idle() {
        return Err("memory system not idle after all completions popped".into());
    }
    let trace = mem.take_trace();
    if trace.len() != submitted {
        return Err(format!(
            "trace records {} issues for {submitted} accepted requests",
            trace.len()
        ));
    }
    check_protocol(mem.config(), &trace)?;
    let row_events = mem.stats().row_hits + mem.stats().row_misses + mem.stats().row_conflicts;
    if row_events != submitted as u64 {
        return Err(format!(
            "row-buffer accounting ({row_events}) disagrees with issued requests ({submitted})"
        ));
    }
    Ok(())
}

/// A deliberately naive reference LRU model: per-set `Vec` ordered
/// most-recent-first, no shared code with [`Cache`].
struct RefLru {
    sets: usize,
    ways: usize,
    lines: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl RefLru {
    fn new(sets: usize, ways: usize) -> Self {
        RefLru {
            sets,
            ways,
            lines: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) % self.sets
    }

    fn probe(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = addr / LINE_BYTES;
        if let Some(pos) = self.lines[set].iter().position(|&t| t == tag) {
            let t = self.lines[set].remove(pos);
            self.lines[set].insert(0, t);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = addr / LINE_BYTES;
        if let Some(pos) = self.lines[set].iter().position(|&t| t == tag) {
            let t = self.lines[set].remove(pos);
            self.lines[set].insert(0, t);
            return;
        }
        if self.lines[set].len() == self.ways {
            self.lines[set].pop();
        }
        self.lines[set].insert(0, tag);
    }

    fn contains(&self, addr: u64) -> bool {
        self.lines[self.set_of(addr)].contains(&(addr / LINE_BYTES))
    }
}

/// Differentially fuzzes the cache hit/miss accounting against `RefLru`.
///
/// # Errors
///
/// Returns the first divergence between model and reference.
pub fn check_cache_model(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sets = 1usize << rng.gen_range(0..4u32);
    let ways = rng.gen_range(1..5usize);
    let mut cache = Cache::new(CacheConfig { sets, ways });
    let mut reference = RefLru::new(sets, ways);
    // A small address pool keeps hit rates interesting.
    let pool: Vec<u64> = (0..rng.gen_range(4..40u64))
        .map(|_| rng.gen_range(0..1u64 << 14))
        .collect();
    for op in 0..600usize {
        let addr = pool[rng.gen_range(0..pool.len())];
        if rng.gen_bool(0.5) {
            let got = cache.probe(addr);
            let want = reference.probe(addr);
            if got != want {
                return Err(format!(
                    "op {op}: probe({addr:#x}) hit={got}, reference says hit={want}"
                ));
            }
        } else {
            cache.fill(addr);
            reference.fill(addr);
        }
        if cache.contains(addr) != reference.contains(addr) {
            return Err(format!("op {op}: residency of {addr:#x} diverged"));
        }
    }
    cache.check_invariants()?;
    if cache.hits() != reference.hits || cache.misses() != reference.misses {
        return Err(format!(
            "counters diverged: cache {}/{} vs reference {}/{}",
            cache.hits(),
            cache.misses(),
            reference.hits,
            reference.misses
        ));
    }
    for &addr in &pool {
        if cache.contains(addr) != reference.contains(addr) {
            return Err(format!("final residency of {addr:#x} diverged"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_protocol_micro_fuzz_passes() {
        for seed in 0..6u64 {
            check_dram_protocol(seed).unwrap();
        }
    }

    #[test]
    fn cache_model_micro_fuzz_passes() {
        for seed in 0..10u64 {
            check_cache_model(seed).unwrap();
        }
    }
}
