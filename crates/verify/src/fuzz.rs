//! The fuzz driver loop behind `cargo run -p gp-bench --bin fuzz`.
//!
//! Each iteration derives a fresh case seed from the master seed, runs the
//! memory-model micro-fuzzers and the full differential oracle, and logs
//! one line. On the first failure the driver (optionally) shrinks the case
//! and prints a ready-to-paste regression test. All output is written
//! through the caller's writer and depends only on the seed, so two runs
//! with the same seed produce byte-identical logs.

use std::io::Write;

use gp_sim::rng::{Rng, StdRng};

use crate::case::{generate, TestCase};
use crate::invariants::{check_cache_model, check_dram_protocol};
use crate::oracle::{run_case, Failure, Fault};
use crate::shrink::{regression_test, shrink};

/// Driver parameters (mirrors the `fuzz` binary's flags).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every case seed derives from it.
    pub seed: u64,
    /// Number of iterations to run.
    pub iters: u64,
    /// Whether to shrink the first failing case.
    pub shrink: bool,
    /// Deliberate defect to inject (harness self-test).
    pub fault: Option<Fault>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 7,
            iters: 50,
            shrink: true,
            fault: None,
        }
    }
}

/// Outcome of a [`run_fuzz`] campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations completed (including the failing one, if any).
    pub iterations_run: u64,
    /// The first failing case, its diagnosis, and — when shrinking was
    /// enabled — the minimized repro.
    pub failure: Option<(TestCase, Failure, Option<TestCase>)>,
}

impl FuzzReport {
    /// Whether the whole campaign passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the campaign described by `cfg`, logging to `out`.
///
/// # Errors
///
/// Only I/O errors from `out` are returned; oracle failures are reported
/// in the [`FuzzReport`].
pub fn run_fuzz(cfg: &FuzzConfig, out: &mut impl Write) -> std::io::Result<FuzzReport> {
    let mut master = StdRng::seed_from_u64(cfg.seed);
    writeln!(
        out,
        "fuzz: seed {} · {} iteration(s) · shrink {} · fault {}",
        cfg.seed,
        cfg.iters,
        if cfg.shrink { "on" } else { "off" },
        match cfg.fault {
            Some(f) => format!("{f:?}"),
            None => "none".into(),
        }
    )?;
    for iter in 0..cfg.iters {
        let case_seed = master.next_u64();
        let case = generate(case_seed);
        writeln!(
            out,
            "iter {iter:4}  seed {case_seed:#018x}  algo {:<4}  n {:3}  m {:4}  updates {:2}",
            case.algo.label(),
            case.vertices,
            case.edges.len(),
            case.updates.len()
        )?;
        if let Err(e) = check_dram_protocol(case_seed ^ 0xD7A3) {
            let failure = Failure {
                check: "dram-protocol",
                detail: e,
            };
            return report_failure(cfg, out, iter, case, failure);
        }
        if let Err(e) = check_cache_model(case_seed ^ 0xCAC4E) {
            let failure = Failure {
                check: "cache-model",
                detail: e,
            };
            return report_failure(cfg, out, iter, case, failure);
        }
        if let Err(failure) = run_case(&case, cfg.fault) {
            return report_failure(cfg, out, iter, case, failure);
        }
    }
    writeln!(
        out,
        "fuzz: {} iteration(s) passed — differential, metamorphic, and \
         invariant checks all clean (seed {})",
        cfg.iters, cfg.seed
    )?;
    Ok(FuzzReport {
        iterations_run: cfg.iters,
        failure: None,
    })
}

fn report_failure(
    cfg: &FuzzConfig,
    out: &mut impl Write,
    iter: u64,
    case: TestCase,
    failure: Failure,
) -> std::io::Result<FuzzReport> {
    writeln!(out, "FAIL at iter {iter}: {failure}")?;
    let mut shrunk = None;
    let mut final_failure = failure.clone();
    if cfg.shrink {
        let (small, last) = shrink(&case, cfg.fault, &failure);
        writeln!(
            out,
            "shrunk: {} -> {} vertices, {} -> {} edges, {} -> {} updates",
            case.vertices,
            small.vertices,
            case.edges.len(),
            small.edges.len(),
            case.updates.len(),
            small.updates.len()
        )?;
        writeln!(out, "minimal repro (ready-to-paste regression test):")?;
        writeln!(out, "{}", regression_test(&small, cfg.fault, &last))?;
        final_failure = last;
        shrunk = Some(small);
    }
    Ok(FuzzReport {
        iterations_run: iter + 1,
        failure: Some((case, final_failure, shrunk)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(cfg: &FuzzConfig) -> (FuzzReport, String) {
        let mut buf = Vec::new();
        let report = run_fuzz(cfg, &mut buf).unwrap();
        (report, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn clean_campaign_passes_and_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 3,
            iters: 4,
            shrink: true,
            fault: None,
        };
        let (r1, log1) = run_to_string(&cfg);
        let (r2, log2) = run_to_string(&cfg);
        assert!(r1.passed() && r2.passed());
        assert_eq!(log1, log2, "same seed must produce byte-identical logs");
        assert!(log1.contains("4 iteration(s) passed"));
    }

    #[test]
    fn injected_fault_fails_and_prints_a_repro() {
        let cfg = FuzzConfig {
            seed: 7,
            iters: 5,
            shrink: true,
            fault: Some(Fault::MergeSkew),
        };
        let (report, log) = run_to_string(&cfg);
        assert!(!report.passed());
        let (_, failure, shrunk) = report.failure.as_ref().unwrap();
        assert_eq!(failure.check, "differential-parallel");
        let small = shrunk.as_ref().unwrap();
        assert!(small.vertices <= 32);
        assert!(log.contains("minimal repro (ready-to-paste regression test):"));
        assert!(log.contains("fn fuzz_regression()"));
    }
}
