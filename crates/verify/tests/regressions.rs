//! Shrinker-produced fuzz repros, promoted to permanent regression tests.
//!
//! Each case below was found by the fuzz driver under an injected
//! `merge-order` fault (`fuzz --seed N --iters 200 --inject-fault
//! merge-order`) and minimized by the ddmin shrinker to a single-vertex
//! machine-geometry nucleus. They are kept in two forms: clean runs (the
//! shrunk case must pass every oracle leg with no fault — pinning that the
//! shrinker emits *valid* cases), and faulted runs (the injected defect
//! must still be caught on the minimal geometry — pinning the oracle's
//! detection floor).

use gp_algorithms::{
    Adsorption, AdsorptionParams, Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp,
    Sswp,
};
use gp_graph::CsrGraph;
use gp_turbo::{run_turbo, TurboConfig};
use gp_verify::oracle::ORACLE_THRESHOLD;
use gp_verify::{generate, run_case, AlgoKind, Fault, MachineParams, TestCase};

/// Shrunk from fuzz `--seed 7`: SSWP on a single isolated root. Failing
/// check was `differential-parallel`
/// (`max |diff| inf > tolerance 0e0`, vertex 0: got 0, golden inf).
fn repro_seed7_sswp_isolated_root() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Sswp,
        root: 0,
        aux_seed: 5688135274254200921,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 1,
            gen_streams: 3,
            queue_bins: 1,
            queue_rows: 13,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: false,
            single_channel_dram: false,
            epoch_cycles: 128,
            forced_shards: 1,
        },
    }
}

/// Shrunk from fuzz `--seed 8`: BFS, two processors, occupancy-first
/// draining, forced two shards on one vertex. Failing check was
/// `differential-parallel` (`max |diff| 1e0`, vertex 0: got 1, golden 0).
fn repro_seed8_bfs_forced_shards() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Bfs,
        root: 0,
        aux_seed: 17764872561908459043,
        updates: vec![],
        batch_size: 12,
        machine: MachineParams {
            processors: 2,
            gen_streams: 1,
            queue_bins: 2,
            queue_rows: 23,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: true,
            single_channel_dram: true,
            epoch_cycles: 128,
            forced_shards: 2,
        },
    }
}

/// Shrunk from fuzz `--seed 9`: SSSP with prefetch, deep coalescer, and
/// three forced shards. Failing check was `differential-parallel`
/// (`max |diff| 1e0`, vertex 0: got 1, golden 0).
fn repro_seed9_sssp_prefetch() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Sssp,
        root: 0,
        aux_seed: 8653046082777018145,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 3,
            gen_streams: 2,
            queue_bins: 1,
            queue_rows: 19,
            queue_cols: 4,
            coalescer_depth: 4,
            prefetch: true,
            occupancy_first: false,
            single_channel_dram: true,
            epoch_cycles: 1024,
            forced_shards: 3,
        },
    }
}

/// Shrunk from fuzz `--seed 7 --inject-fault drop-event`: SSWP on a
/// 7-edge chain hanging off root 25. Failing check was `chaos-detection`
/// (per-epoch conservation: generated 8 != processed 7 + coalesced 0,
/// deficit 1 — the dropped propagation caught by the event-conservation
/// watchdog on the minimal graph that still reaches the trigger index).
fn repro_seed7_sswp_drop_event() -> TestCase {
    TestCase {
        vertices: 26,
        edges: vec![
            (17, 8, 1.0),
            (20, 22, 1.0),
            (21, 1, 1.0),
            (21, 17, 1.0),
            (21, 20, 1.0),
            (25, 18, 1.0),
            (25, 21, 1.0),
        ],
        algo: AlgoKind::Sswp,
        root: 25,
        aux_seed: 5688135274254200921,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 1,
            gen_streams: 3,
            queue_bins: 1,
            queue_rows: 13,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: false,
            single_channel_dram: false,
            epoch_cycles: 128,
            forced_shards: 1,
        },
    }
}

#[test]
fn fuzz_regression_seed7_sswp_isolated_root() {
    run_case(&repro_seed7_sswp_isolated_root(), None).unwrap();
}

#[test]
fn fuzz_regression_seed8_bfs_forced_shards() {
    run_case(&repro_seed8_bfs_forced_shards(), None).unwrap();
}

#[test]
fn fuzz_regression_seed9_sssp_prefetch() {
    run_case(&repro_seed9_sssp_prefetch(), None).unwrap();
}

#[test]
fn fuzz_regression_seed7_sswp_drop_event() {
    // Clean run: the shrunk case passes every oracle leg without a fault.
    run_case(&repro_seed7_sswp_drop_event(), None).unwrap();
}

#[test]
fn drop_event_repro_is_still_detected_in_engine() {
    let failure = run_case(&repro_seed7_sswp_drop_event(), Some(Fault::DropEvent))
        .expect_err("minimal graph must still expose the dropped event");
    assert_eq!(failure.check, "chaos-detection", "{failure}");
    assert!(
        failure.detail.contains("event-conservation"),
        "detection must come from the conservation watchdog: {failure}"
    );
}

// --- `differential-turbo-sharded` oracle leg -----------------------------
//
// When the sharded turbo engine landed, the fuzz driver ran 300 iterations
// at master seed 7 with the new `differential-turbo-sharded` leg active
// (every case re-runs turbo at 2 and 4 forced shards and demands
// bit-identical values and counters) and found no divergence — there was
// no failing case for the shrinker to minimize. Per the promotion
// protocol, the forced-shard metamorphic check itself is committed here as
// a fixed-seed regression instead, at shard counts the oracle leg does
// *not* sweep (3, 5, 8, including counts that do not divide the vertex
// count and counts above it), so a future scheduling change that only
// breaks an untested partition still trips a pinned test.

/// Sharded runs must reproduce the single-shard run exactly: same value
/// bits, same counters, same per-round schedule (`render_log` covers
/// both).
fn assert_shard_metamorphic<A: DeltaAlgorithm>(seed: u64, algo: &A, g: &CsrGraph) {
    let cfg = TurboConfig {
        record_rounds: true,
        ..TurboConfig::default()
    };
    let base = run_turbo(algo, g, &cfg);
    let base_bits: Vec<u64> = base.values.iter().map(|v| v.to_bits()).collect();
    for shards in [2usize, 3, 5, 8] {
        let out = run_turbo(algo, g, &TurboConfig { shards, ..cfg });
        assert_eq!(
            out.render_log(),
            base.render_log(),
            "seed {seed} ({}): schedule diverged at {shards} shards",
            algo.name()
        );
        let out_bits: Vec<u64> = out.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            out_bits,
            base_bits,
            "seed {seed} ({}): values diverged at {shards} shards",
            algo.name()
        );
    }
}

#[test]
fn sharded_turbo_metamorphic_on_the_fixed_seed_corpus() {
    let mut seen = [false; 6];
    for seed in 0..12u64 {
        let case = generate(seed);
        let g = case.build_graph();
        let root = case.clamped_root();
        match case.algo {
            AlgoKind::PageRank => {
                assert_shard_metamorphic(seed, &PageRankDelta::new(0.85, ORACLE_THRESHOLD), &g)
            }
            AlgoKind::Adsorption => {
                let algo = Adsorption::new(
                    AdsorptionParams::random(g.num_vertices(), case.aux_seed),
                    ORACLE_THRESHOLD,
                );
                assert_shard_metamorphic(seed, &algo, &g);
            }
            AlgoKind::Sssp => assert_shard_metamorphic(seed, &Sssp::new(root), &g),
            AlgoKind::Bfs => assert_shard_metamorphic(seed, &Bfs::new(root), &g),
            AlgoKind::Cc => assert_shard_metamorphic(seed, &ConnectedComponents::new(), &g),
            AlgoKind::Sswp => assert_shard_metamorphic(seed, &Sswp::new(root), &g),
        }
        let idx = AlgoKind::ALL.iter().position(|&k| k == case.algo).unwrap();
        seen[idx] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "corpus slice did not cover all six algorithms: {seen:?}"
    );
}

#[test]
fn sharded_oracle_leg_passes_on_fixed_corpus_cases() {
    // Full oracle sweep (which now includes `differential-turbo-sharded`)
    // on a fixed corpus slice — the exact check the fuzzer runs, pinned.
    for seed in [7u64, 8, 9] {
        run_case(&generate(seed), None).unwrap();
    }
}

// --- `differential-outofcore` oracle leg ---------------------------------
//
// When the mmap-backed container landed, the fuzz driver ran the full
// oracle (now including `differential-outofcore`: golden and turbo re-run
// over an on-disk mapping, demanded bit-exact with their resident runs)
// across the fixed corpus and found no divergence — nothing for the
// shrinker to minimize. Per the promotion protocol, the corruption paths
// the leg depends on are pinned here instead, as fixed-seed repros: each
// corruption class is applied to the container of a corpus-case graph and
// must surface as its typed `ReadGraphError` — never a panic and never a
// silently-open graph.

use gp_graph::container::{write_container, SegmentDigest, HEADER_DIGEST_AT};
use gp_graph::io::ReadGraphError;
use gp_graph::MappedCsr;

/// Writes the container of the corpus case at `seed` and returns its path
/// and raw bytes. Caller owns cleanup via the returned scratch dir.
fn corpus_container(seed: u64) -> (std::path::PathBuf, std::path::PathBuf, Vec<u8>) {
    let g = generate(seed).build_graph();
    assert!(g.num_edges() > 0, "corpus seed {seed} produced no edges");
    let dir = std::env::temp_dir().join(format!("gp-regress-ooc-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("case.gpc");
    write_container(&g, &path, (g.num_vertices() / 2).max(1)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (dir, path, bytes)
}

fn reopen(path: &std::path::Path, bytes: &[u8]) -> Result<MappedCsr, ReadGraphError> {
    std::fs::write(path, bytes).unwrap();
    MappedCsr::open_verified(path)
}

/// Fixed-seed corruption repros: every class of container damage on the
/// seed-7 corpus graph returns its typed error through the exact
/// `open_verified` path the oracle leg uses.
#[test]
fn outofcore_corruption_classes_stay_typed_on_corpus_graph() {
    let (dir, path, healthy) = corpus_container(7);

    // Undamaged baseline opens and passes the full oracle-path checks.
    reopen(&path, &healthy).unwrap();

    let mut truncated = healthy.clone();
    truncated.truncate(healthy.len() - 8);
    assert!(matches!(
        reopen(&path, &truncated),
        Err(ReadGraphError::Truncated)
    ));

    let mut magic = healthy.clone();
    magic[1] = b'!';
    assert!(matches!(
        reopen(&path, &magic),
        Err(ReadGraphError::BadMagic)
    ));

    let mut version = healthy.clone();
    version[4..6].copy_from_slice(&2u16.to_le_bytes());
    assert!(matches!(
        reopen(&path, &version),
        Err(ReadGraphError::BadVersion(2))
    ));

    let mut skewed = healthy.clone();
    // out_neighbors descriptor offset (second segment): off the 64-byte
    // grid, header digest resealed so alignment is the failing check.
    let at = 32 + 24;
    let off = u64::from_le_bytes(skewed[at..at + 8].try_into().unwrap());
    skewed[at..at + 8].copy_from_slice(&(off + 8).to_le_bytes());
    let mut d = SegmentDigest::new();
    d.update(&skewed[..HEADER_DIGEST_AT]);
    let digest = d.finish();
    skewed[HEADER_DIGEST_AT..HEADER_DIGEST_AT + 8].copy_from_slice(&digest.to_le_bytes());
    assert!(matches!(
        reopen(&path, &skewed),
        Err(ReadGraphError::Misaligned(_))
    ));

    let mut flipped = healthy.clone();
    let neigh_off = u64::from_le_bytes(flipped[56..64].try_into().unwrap()) as usize;
    flipped[neigh_off] ^= 0x80;
    assert!(matches!(
        reopen(&path, &flipped),
        Err(ReadGraphError::ChecksumMismatch(_))
    ));

    let mut rowptr = healthy.clone();
    let rowptr_off = u64::from_le_bytes(rowptr[32..40].try_into().unwrap()) as usize;
    rowptr[rowptr_off + 4..rowptr_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        reopen(&path, &rowptr),
        Err(ReadGraphError::Corrupt(_))
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn outofcore_oracle_leg_passes_on_fixed_corpus_cases() {
    // Full oracle sweep (which now includes `differential-outofcore`) on a
    // fixed corpus slice — the exact check the fuzzer runs, pinned.
    for seed in [10u64, 11, 12] {
        run_case(&generate(seed), None).unwrap();
    }
}

#[test]
fn shrunk_repros_still_trip_the_oracle_under_the_original_fault() {
    for (name, case) in [
        ("seed7-sswp", repro_seed7_sswp_isolated_root()),
        ("seed8-bfs", repro_seed8_bfs_forced_shards()),
        ("seed9-sssp", repro_seed9_sssp_prefetch()),
    ] {
        let failure = run_case(&case, Some(Fault::MergeSkew))
            .expect_err("minimal geometry must still expose the injected fault");
        assert_eq!(failure.check, "differential-parallel", "{name}: {failure}");
    }
}
