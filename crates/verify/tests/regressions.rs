//! Shrinker-produced fuzz repros, promoted to permanent regression tests.
//!
//! Each case below was found by the fuzz driver under an injected
//! `merge-order` fault (`fuzz --seed N --iters 200 --inject-fault
//! merge-order`) and minimized by the ddmin shrinker to a single-vertex
//! machine-geometry nucleus. They are kept in two forms: clean runs (the
//! shrunk case must pass every oracle leg with no fault — pinning that the
//! shrinker emits *valid* cases), and faulted runs (the injected defect
//! must still be caught on the minimal geometry — pinning the oracle's
//! detection floor).

use gp_verify::{run_case, AlgoKind, Fault, MachineParams, TestCase};

/// Shrunk from fuzz `--seed 7`: SSWP on a single isolated root. Failing
/// check was `differential-parallel`
/// (`max |diff| inf > tolerance 0e0`, vertex 0: got 0, golden inf).
fn repro_seed7_sswp_isolated_root() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Sswp,
        root: 0,
        aux_seed: 5688135274254200921,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 1,
            gen_streams: 3,
            queue_bins: 1,
            queue_rows: 13,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: false,
            single_channel_dram: false,
            epoch_cycles: 128,
            forced_shards: 1,
        },
    }
}

/// Shrunk from fuzz `--seed 8`: BFS, two processors, occupancy-first
/// draining, forced two shards on one vertex. Failing check was
/// `differential-parallel` (`max |diff| 1e0`, vertex 0: got 1, golden 0).
fn repro_seed8_bfs_forced_shards() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Bfs,
        root: 0,
        aux_seed: 17764872561908459043,
        updates: vec![],
        batch_size: 12,
        machine: MachineParams {
            processors: 2,
            gen_streams: 1,
            queue_bins: 2,
            queue_rows: 23,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: true,
            single_channel_dram: true,
            epoch_cycles: 128,
            forced_shards: 2,
        },
    }
}

/// Shrunk from fuzz `--seed 9`: SSSP with prefetch, deep coalescer, and
/// three forced shards. Failing check was `differential-parallel`
/// (`max |diff| 1e0`, vertex 0: got 1, golden 0).
fn repro_seed9_sssp_prefetch() -> TestCase {
    TestCase {
        vertices: 1,
        edges: vec![],
        algo: AlgoKind::Sssp,
        root: 0,
        aux_seed: 8653046082777018145,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 3,
            gen_streams: 2,
            queue_bins: 1,
            queue_rows: 19,
            queue_cols: 4,
            coalescer_depth: 4,
            prefetch: true,
            occupancy_first: false,
            single_channel_dram: true,
            epoch_cycles: 1024,
            forced_shards: 3,
        },
    }
}

/// Shrunk from fuzz `--seed 7 --inject-fault drop-event`: SSWP on a
/// 7-edge chain hanging off root 25. Failing check was `chaos-detection`
/// (per-epoch conservation: generated 8 != processed 7 + coalesced 0,
/// deficit 1 — the dropped propagation caught by the event-conservation
/// watchdog on the minimal graph that still reaches the trigger index).
fn repro_seed7_sswp_drop_event() -> TestCase {
    TestCase {
        vertices: 26,
        edges: vec![
            (17, 8, 1.0),
            (20, 22, 1.0),
            (21, 1, 1.0),
            (21, 17, 1.0),
            (21, 20, 1.0),
            (25, 18, 1.0),
            (25, 21, 1.0),
        ],
        algo: AlgoKind::Sswp,
        root: 25,
        aux_seed: 5688135274254200921,
        updates: vec![],
        batch_size: 10,
        machine: MachineParams {
            processors: 1,
            gen_streams: 3,
            queue_bins: 1,
            queue_rows: 13,
            queue_cols: 1,
            coalescer_depth: 1,
            prefetch: false,
            occupancy_first: false,
            single_channel_dram: false,
            epoch_cycles: 128,
            forced_shards: 1,
        },
    }
}

#[test]
fn fuzz_regression_seed7_sswp_isolated_root() {
    run_case(&repro_seed7_sswp_isolated_root(), None).unwrap();
}

#[test]
fn fuzz_regression_seed8_bfs_forced_shards() {
    run_case(&repro_seed8_bfs_forced_shards(), None).unwrap();
}

#[test]
fn fuzz_regression_seed9_sssp_prefetch() {
    run_case(&repro_seed9_sssp_prefetch(), None).unwrap();
}

#[test]
fn fuzz_regression_seed7_sswp_drop_event() {
    // Clean run: the shrunk case passes every oracle leg without a fault.
    run_case(&repro_seed7_sswp_drop_event(), None).unwrap();
}

#[test]
fn drop_event_repro_is_still_detected_in_engine() {
    let failure = run_case(&repro_seed7_sswp_drop_event(), Some(Fault::DropEvent))
        .expect_err("minimal graph must still expose the dropped event");
    assert_eq!(failure.check, "chaos-detection", "{failure}");
    assert!(
        failure.detail.contains("event-conservation"),
        "detection must come from the conservation watchdog: {failure}"
    );
}

#[test]
fn shrunk_repros_still_trip_the_oracle_under_the_original_fault() {
    for (name, case) in [
        ("seed7-sswp", repro_seed7_sswp_isolated_root()),
        ("seed8-bfs", repro_seed8_bfs_forced_shards()),
        ("seed9-sssp", repro_seed9_sssp_prefetch()),
    ] {
        let failure = run_case(&case, Some(Fault::MergeSkew))
            .expect_err("minimal geometry must still expose the injected fault");
        assert_eq!(failure.check, "differential-parallel", "{name}: {failure}");
    }
}
