//! Turbo-vs-golden differential tests outside the fuzz driver.
//!
//! The fuzzer exercises the turbo leg on random seeds; these tests pin it
//! on the fixed-seed corpus from [`gp_verify::generate`] (R-MAT,
//! Barabási–Albert, and Erdős–Rényi families across all six algorithms),
//! plus a standalone determinism check: two runs must be byte-identical in
//! values, counters, and rendered logs.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, DeltaAlgorithm,
    PageRankDelta, Sssp, Sswp,
};
use gp_graph::CsrGraph;
use gp_turbo::{run_turbo, TurboConfig, TurboOutcome};
use gp_verify::oracle::ORACLE_THRESHOLD;
use gp_verify::{generate, AlgoKind};

/// Runs turbo and golden on the same graph; exact (bit-level) agreement
/// for monotone algorithms, tolerance-bounded for accumulative ones.
fn assert_turbo_matches<A: DeltaAlgorithm>(seed: u64, algo: &A, g: &CsrGraph, exact: bool) {
    let golden = run_sequential(algo, g);
    let turbo = run_turbo(algo, g, &TurboConfig::default());
    assert_eq!(
        turbo.values.len(),
        golden.values.len(),
        "seed {seed} ({}): length mismatch",
        algo.name()
    );
    if exact {
        let tb: Vec<u64> = turbo.values.iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u64> = golden.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(tb, gb, "seed {seed} ({}): not bit-exact", algo.name());
    } else {
        let tol = algo.comparison_tolerance();
        let diff = max_abs_diff(&turbo.values, &golden.values);
        assert!(
            diff <= tol,
            "seed {seed} ({}): max |diff| {diff:e} > tolerance {tol:e}",
            algo.name()
        );
    }
    // Nothing may be lost: every generated event is coalesced or applied.
    assert_eq!(
        turbo.events_generated,
        turbo.events_coalesced + turbo.events_processed,
        "seed {seed} ({}): event accounting leaked",
        algo.name()
    );
}

fn check_seed(seed: u64) -> AlgoKind {
    let case = generate(seed);
    let g = case.build_graph();
    let root = case.clamped_root();
    match case.algo {
        AlgoKind::PageRank => {
            let algo = PageRankDelta::new(0.85, ORACLE_THRESHOLD);
            assert_turbo_matches(seed, &algo, &g, false);
        }
        AlgoKind::Adsorption => {
            let algo = Adsorption::new(
                AdsorptionParams::random(g.num_vertices(), case.aux_seed),
                ORACLE_THRESHOLD,
            );
            assert_turbo_matches(seed, &algo, &g, false);
        }
        AlgoKind::Sssp => assert_turbo_matches(seed, &Sssp::new(root), &g, true),
        AlgoKind::Bfs => assert_turbo_matches(seed, &Bfs::new(root), &g, true),
        AlgoKind::Cc => assert_turbo_matches(seed, &ConnectedComponents::new(), &g, true),
        AlgoKind::Sswp => assert_turbo_matches(seed, &Sswp::new(root), &g, true),
    }
    case.algo
}

#[test]
fn turbo_matches_golden_on_the_fixed_seed_corpus() {
    // 48 seeds are enough for every algorithm and graph family to appear
    // (gp_verify::case tests pin this for 64; track coverage here too).
    let mut seen = [false; 6];
    for seed in 0..48u64 {
        let kind = check_seed(seed);
        let idx = AlgoKind::ALL.iter().position(|&k| k == kind).unwrap();
        seen[idx] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "corpus did not cover all six algorithms: {seen:?}"
    );
}

#[test]
fn turbo_is_byte_deterministic_on_the_corpus() {
    let cfg = TurboConfig {
        record_rounds: true,
        ..TurboConfig::default()
    };
    let fingerprint = |o: &TurboOutcome| {
        let bits: Vec<u64> = o.values.iter().map(|v| v.to_bits()).collect();
        (bits, o.render_log())
    };
    for seed in [7u64, 8, 9, 10, 11, 12] {
        let case = generate(seed);
        let g = case.build_graph();
        let root = case.clamped_root();
        let (a, b) = match case.algo {
            AlgoKind::PageRank => {
                let algo = PageRankDelta::new(0.85, ORACLE_THRESHOLD);
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
            AlgoKind::Adsorption => {
                let algo = Adsorption::new(
                    AdsorptionParams::random(g.num_vertices(), case.aux_seed),
                    ORACLE_THRESHOLD,
                );
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
            AlgoKind::Sssp => {
                let algo = Sssp::new(root);
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
            AlgoKind::Bfs => {
                let algo = Bfs::new(root);
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
            AlgoKind::Cc => {
                let algo = ConnectedComponents::new();
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
            AlgoKind::Sswp => {
                let algo = Sswp::new(root);
                (run_turbo(&algo, &g, &cfg), run_turbo(&algo, &g, &cfg))
            }
        };
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed} ({}): two runs diverged",
            case.algo.label()
        );
        assert!(!a.render_log().is_empty());
    }
}
