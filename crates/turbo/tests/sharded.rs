//! Sharded-engine property tests: the vertex-sharded turbo engine must be
//! indistinguishable from the single-shard one at the bit level.
//!
//! Three properties, each swept over graph families × algorithms:
//!
//! 1. **Drain order**: the global round schedule (key sequence, per-round
//!    drained/processed totals) at 2 and 4 shards equals the single-shard
//!    order — pinned through `render_log`, which serializes the counters
//!    and the full round log.
//! 2. **Stale-entry lazy deletion**: reschedules leave stale wheel entries
//!    behind on whichever shard owns the vertex; the stale and reschedule
//!    counters must not depend on the partition.
//! 3. **Horizon-overflow clamp**: with a tiny wheel horizon, the clamp to
//!    the outermost bucket happens against the *global* round key on every
//!    shard, so overflow counts and values stay partition-invariant.
//!
//! Plus a driver-equivalence check: the scoped-thread driver (used for
//! clean multi-shard runs) must be bit-identical to the sequential driver
//! (used for faulted runs), pinned by forcing the sequential driver with a
//! fault that never fires.

use gp_algorithms::{Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp, Sswp};
use gp_graph::generators::{barabasi_albert, erdos_renyi, rmat, RmatConfig, WeightMode};
use gp_graph::{CsrGraph, VertexId};
use gp_turbo::{run_turbo, StaleFault, TurboConfig, TurboOutcome};

const SHARD_COUNTS: [usize; 3] = [2, 3, 4];

fn graphs(seed: u64) -> Vec<CsrGraph> {
    vec![
        rmat(&RmatConfig::graph500(256, 2_048), seed),
        erdos_renyi(300, 1_800, WeightMode::Uniform(1.0, 8.0), seed ^ 0x5bd1),
        barabasi_albert(200, 4, WeightMode::Uniform(0.5, 2.0), seed ^ 0x9e37),
    ]
}

fn value_bits(o: &TurboOutcome) -> Vec<u64> {
    o.values.iter().map(|v| v.to_bits()).collect()
}

/// Runs `algo` at every shard count under `cfg` and asserts the rendered
/// log (counters + full round log) and the value bits match the
/// single-shard run exactly.
fn assert_partition_invariant<A: DeltaAlgorithm>(
    label: &str,
    algo: &A,
    g: &CsrGraph,
    cfg: &TurboConfig,
) {
    let base_cfg = TurboConfig {
        shards: 1,
        record_rounds: true,
        ..*cfg
    };
    let base = run_turbo(algo, g, &base_cfg);
    for shards in SHARD_COUNTS {
        let out = run_turbo(algo, g, &TurboConfig { shards, ..base_cfg });
        assert_eq!(
            out.render_log(),
            base.render_log(),
            "{label}: round schedule diverged at {shards} shards"
        );
        assert_eq!(
            value_bits(&out),
            value_bits(&base),
            "{label}: values diverged at {shards} shards"
        );
        assert_eq!(
            out.orphaned, base.orphaned,
            "{label}: orphan set diverged at {shards} shards"
        );
    }
}

#[test]
fn drain_order_is_shard_count_invariant() {
    for seed in [3u64, 11, 29] {
        for g in &graphs(seed) {
            let root = VertexId::new(0);
            assert_partition_invariant(
                "pagerank",
                &PageRankDelta::new(0.85, 1e-7),
                g,
                &TurboConfig::default(),
            );
            assert_partition_invariant("sssp", &Sssp::new(root), g, &TurboConfig::default());
            assert_partition_invariant("bfs", &Bfs::new(root), g, &TurboConfig::default());
            assert_partition_invariant(
                "cc",
                &ConnectedComponents::new(),
                g,
                &TurboConfig::default(),
            );
            assert_partition_invariant("sswp", &Sswp::new(root), g, &TurboConfig::default());
        }
    }
}

#[test]
fn stale_lazy_deletion_is_shard_count_invariant() {
    // PageRank on a hub-heavy graph reschedules constantly (coalesces grow
    // deltas, moving vertices to more urgent buckets and stranding stale
    // entries); the lazy-deletion bookkeeping must not see the partition.
    let g = barabasi_albert(400, 6, WeightMode::Unweighted, 17);
    let pr = PageRankDelta::new(0.85, 1e-8);
    let base = run_turbo(&pr, &g, &TurboConfig::default());
    assert!(
        base.reschedules > 0 && base.stale_entries > 0,
        "test premise: the workload must exercise lazy deletion \
         (reschedules {}, stale {})",
        base.reschedules,
        base.stale_entries
    );
    for shards in SHARD_COUNTS {
        let out = run_turbo(
            &pr,
            &g,
            &TurboConfig {
                shards,
                ..TurboConfig::default()
            },
        );
        assert_eq!(out.stale_entries, base.stale_entries, "{shards} shards");
        assert_eq!(out.reschedules, base.reschedules, "{shards} shards");
        assert_eq!(
            out.events_coalesced, base.events_coalesced,
            "{shards} shards"
        );
    }
    assert_partition_invariant("pagerank-ba", &pr, &g, &TurboConfig::default());
}

#[test]
fn overflow_clamp_is_shard_count_invariant() {
    // Horizon 4 (2 slots × 2 levels): nearly every quantized key lies past
    // the horizon and is clamped to the outermost bucket. The clamp window
    // is anchored at the global round key on every shard, so the overflow
    // accounting and the resulting schedule are partition-invariant.
    let tiny = TurboConfig {
        wheel_slots: 2,
        wheel_levels: 2,
        ..TurboConfig::default()
    };
    for seed in [2u64, 19] {
        for g in &graphs(seed) {
            let algo = Sssp::new(VertexId::new(0));
            let base = run_turbo(&algo, g, &tiny);
            assert!(
                base.overflow_handoffs > 0,
                "test premise: the tiny horizon must overflow"
            );
            for shards in SHARD_COUNTS {
                let out = run_turbo(&algo, g, &TurboConfig { shards, ..tiny });
                assert_eq!(
                    out.overflow_handoffs, base.overflow_handoffs,
                    "seed {seed}, {shards} shards: overflow counts diverged"
                );
            }
            assert_partition_invariant("sssp-tiny-horizon", &algo, g, &tiny);
        }
    }
}

#[test]
fn unprioritized_mode_is_shard_count_invariant() {
    // With prioritization off every deposit lands in the current bucket
    // and the engine degenerates to synchronous sweeps — the degenerate
    // schedule must shard identically too.
    let cfg = TurboConfig {
        prioritized: false,
        ..TurboConfig::default()
    };
    let g = rmat(&RmatConfig::graph500(256, 2_048), 7);
    assert_partition_invariant(
        "pagerank-unprioritized",
        &PageRankDelta::new(0.85, 1e-7),
        &g,
        &cfg,
    );
}

#[test]
fn threaded_driver_matches_sequential_driver() {
    // A fault that never fires (after_rounds = u64::MAX) forces the
    // sequential round driver while leaving the run semantically clean;
    // the scoped-thread driver used for clean multi-shard runs must
    // produce the identical outcome.
    let g = rmat(&RmatConfig::graph500(256, 2_048), 13);
    let pr = PageRankDelta::new(0.85, 1e-7);
    for shards in SHARD_COUNTS {
        let threaded = run_turbo(
            &pr,
            &g,
            &TurboConfig {
                shards,
                record_rounds: true,
                ..TurboConfig::default()
            },
        );
        let sequential = run_turbo(
            &pr,
            &g,
            &TurboConfig {
                shards,
                record_rounds: true,
                fault: Some(StaleFault {
                    after_rounds: u64::MAX,
                    pick: 0,
                }),
                ..TurboConfig::default()
            },
        );
        assert_eq!(
            threaded.render_log(),
            sequential.render_log(),
            "{shards} shards: drivers diverged"
        );
        assert_eq!(value_bits(&threaded), value_bits(&sequential));
    }
}

#[test]
fn stale_fault_is_shard_count_invariant() {
    // Fault injection always runs the sequential driver with a global
    // victim scan in vertex order, so even corrupted runs — orphans and
    // all — are partition-invariant.
    let g = erdos_renyi(96, 380, WeightMode::Uniform(1.0, 6.0), 13);
    let algo = Sssp::new(VertexId::new(0));
    let clean_rounds = run_turbo(&algo, &g, &TurboConfig::default()).rounds;
    for after_rounds in [2, clean_rounds.saturating_sub(2).max(1)] {
        for pick in [0u64, 3] {
            let base = run_turbo(
                &algo,
                &g,
                &TurboConfig {
                    record_rounds: true,
                    fault: Some(StaleFault { after_rounds, pick }),
                    ..TurboConfig::default()
                },
            );
            for shards in SHARD_COUNTS {
                let out = run_turbo(
                    &algo,
                    &g,
                    &TurboConfig {
                        shards,
                        record_rounds: true,
                        fault: Some(StaleFault { after_rounds, pick }),
                        ..TurboConfig::default()
                    },
                );
                assert_eq!(out.orphaned, base.orphaned);
                assert_eq!(out.render_log(), base.render_log());
            }
        }
    }
}
