//! The turbo executor: SoA coalescing pool + prioritized bucket draining,
//! optionally sharded across worker threads with a deterministic
//! cross-shard merge.
//!
//! # Sharded execution
//!
//! With [`TurboConfig::shards`] > 1 the dense event pool and the
//! hierarchical wheel are partitioned by contiguous vertex range: shard
//! `i` owns vertices `[i*B, (i+1)*B)` for block size `B = ceil(n /
//! shards)`. Execution proceeds in global *rounds*: each round drains the
//! smallest key resident on **any** shard (all shard wheels are advanced
//! to that key first, so clamping and the overflow window are identical
//! everywhere), and every delta propagated during the round is buffered
//! in a per-target-shard outbox instead of being deposited immediately.
//! At the end of the round the outboxes are merged in canonical `(bucket,
//! shard, seq)` order — ascending source shard, batch order within a
//! shard — which, because shards own contiguous ranges and batches are
//! vertex-sorted, is exactly ascending global source vertex. The same
//! discipline (and the same argument) as the shard-parallel cycle
//! engine's inbox merge.
//!
//! Because the round schedule, the deposit order, and the clamp window
//! are all functions of the global key sequence alone, the outcome —
//! values, every counter, the round log — is bit-identical for any shard
//! count, including 1. A sequential driver and a scoped-thread driver
//! execute the identical per-round steps; the threaded driver is used
//! when `shards > 1` and no fault is injected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, RwLock};

use gp_algorithms::DeltaAlgorithm;
use gp_graph::{GraphView, VertexId};
use gp_sim::HierarchicalWheel;

use crate::priority::key_of;

/// Tuning knobs for [`run_turbo`].
///
/// The defaults give a wheel horizon of `16^3 = 4096` buckets — exactly the
/// quantized key space of [`priority::key_of`](crate::priority::key_of) —
/// so from a cold start no insertion ever overflows the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TurboConfig {
    /// Slots per wheel level (≥ 2).
    pub wheel_slots: u64,
    /// Number of wheel levels (≥ 1); the horizon is `slots^levels` keys.
    pub wheel_levels: usize,
    /// Schedule by quantized delta urgency (§V). When `false`, every
    /// activation lands in the current bucket and the drain degenerates to
    /// round-based sweeps — useful for isolating the prioritization win.
    pub prioritized: bool,
    /// Sort each drained bucket by vertex id so the kernel walks monotone,
    /// cache-blocked CSR ranges. Also what makes the cross-shard merge
    /// order canonical; the bit-identical-across-shard-counts guarantee
    /// assumes it stays on (the default).
    pub sort_buckets: bool,
    /// Vertex shards (0 and 1 both mean single-shard). Shards drain on
    /// worker threads; the outcome is bit-identical for any value.
    pub shards: usize,
    /// Record a per-round log (key, drained, processed) in the outcome.
    /// Off by default: the log costs memory proportional to the round
    /// count and is only needed by determinism tests and diagnostics.
    pub record_rounds: bool,
    /// Deterministic stale-entry fault injection (`None` = clean run).
    /// Faulted runs always use the sequential driver so the victim scan
    /// stays a plain global sweep.
    pub fault: Option<StaleFault>,
}

/// A deterministic stale-entry corruption in the scheduling pool: after
/// the `after_rounds`-th drained bucket, one active vertex's `enq_key`
/// tag (chosen by `pick` among the vertices active at that moment, in
/// index order) gets its top bit flipped — an SRAM upset in the
/// enqueue-key column. The vertex's wheel entry then always looks stale
/// and is lazily skipped, so its pending delta is silently dropped unless
/// a later deposit to the same vertex re-schedules it (which heals the
/// tag and loses nothing). A dropped delta leaves the pool entry active
/// after wheel exhaustion, which [`TurboOutcome::check_lost_events`]
/// detects — the fault can therefore delay work or be caught, but never
/// corrupt a result silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleFault {
    /// Drained-bucket count after which the corruption fires.
    pub after_rounds: u64,
    /// Selects the victim among the vertices active at the trigger point.
    pub pick: u64,
}

impl Default for TurboConfig {
    fn default() -> Self {
        TurboConfig {
            wheel_slots: 16,
            wheel_levels: 3,
            prioritized: true,
            sort_buckets: true,
            shards: 1,
            record_rounds: false,
            fault: None,
        }
    }
}

/// One drained priority bucket in the optional round log.
///
/// With shards, one entry covers the whole global round: `drained` and
/// `processed` sum over every shard that had the round's key resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStat {
    /// Wheel key (quantized urgency class) of the bucket.
    pub key: u64,
    /// Entries drained from the bucket, including stale ones.
    pub drained: u64,
    /// Events actually applied (drained minus stale skips).
    pub processed: u64,
}

/// Result of a [`run_turbo`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TurboOutcome {
    /// Final vertex values projected to `f64` via
    /// [`DeltaAlgorithm::value_to_f64`].
    pub values: Vec<f64>,
    /// Events applied to vertex state (post-coalescing), the paper's
    /// throughput denominator.
    pub events_processed: u64,
    /// Events generated by seeds and propagation (pre-coalescing).
    pub events_generated: u64,
    /// Events absorbed in place into an already-pending delta.
    pub events_coalesced: u64,
    /// Wheel entries skipped because their vertex was re-scheduled into a
    /// more urgent bucket (lazy deletion) or already drained.
    pub stale_entries: u64,
    /// Times a pending vertex moved to a more urgent bucket after a
    /// coalesce made its delta bigger.
    pub reschedules: u64,
    /// Insertions whose quantized key lay beyond the wheel horizon and
    /// were handed off to the outermost bucket. Always zero with the
    /// default geometry (horizon = key space).
    pub overflow_handoffs: u64,
    /// Global rounds (distinct key visits; a bucket drained on several
    /// shards in the same round counts once).
    pub rounds: u64,
    /// Vertices whose pending delta was still active when the wheel ran
    /// dry — events the scheduler lost. Always empty on a clean run; the
    /// in-engine lost-event check ([`TurboOutcome::check_lost_events`])
    /// fires on any entry.
    pub orphaned: Vec<u32>,
    /// Per-round stats; empty unless [`TurboConfig::record_rounds`].
    pub round_log: Vec<RoundStat>,
}

impl TurboOutcome {
    /// Fraction of generated events absorbed by in-place coalescing.
    #[must_use]
    pub fn coalesce_rate(&self) -> f64 {
        if self.events_generated == 0 {
            0.0
        } else {
            self.events_coalesced as f64 / self.events_generated as f64
        }
    }

    /// In-engine lost-event check: after wheel exhaustion every generated
    /// event must have been coalesced away or processed — an event-pool
    /// entry still active means the scheduler dropped a delta (stale-tag
    /// corruption is the canonical cause).
    ///
    /// # Errors
    ///
    /// Returns a message naming the orphan count, a sample of victim
    /// vertices, and the violated conservation identity.
    pub fn check_lost_events(&self) -> Result<(), String> {
        if self.orphaned.is_empty() {
            return Ok(());
        }
        let sample: Vec<u32> = self.orphaned.iter().copied().take(8).collect();
        Err(format!(
            "turbo lost {} event(s): pool entries still active after wheel \
             exhaustion at vertices {:?}{} — conservation violated: \
             generated {} != coalesced {} + processed {} (orphaned {})",
            self.orphaned.len(),
            sample,
            if self.orphaned.len() > sample.len() {
                ", …"
            } else {
                ""
            },
            self.events_generated,
            self.events_coalesced,
            self.events_processed,
            self.orphaned.len(),
        ))
    }

    /// Renders the counters (and round log, if recorded) as a stable,
    /// deterministic text block — two identical runs must produce
    /// byte-identical output, which the determinism tests rely on.
    #[must_use]
    pub fn render_log(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "turbo: rounds={} processed={} generated={} coalesced={} \
             stale={} resched={} overflow={} orphaned={}\n",
            self.rounds,
            self.events_processed,
            self.events_generated,
            self.events_coalesced,
            self.stale_entries,
            self.reschedules,
            self.overflow_handoffs,
            self.orphaned.len(),
        );
        for r in &self.round_log {
            let _ = writeln!(
                s,
                "round key={} drained={} processed={}",
                r.key, r.drained, r.processed
            );
        }
        s
    }
}

/// The dense per-vertex event pool, struct-of-arrays, indexed by
/// shard-local vertex offset.
///
/// At most one pending delta per vertex ever exists (the accelerator's
/// in-place coalescing invariant); `active` marks occupancy and `enq_key`
/// remembers which wheel bucket owns the vertex so later, staler wheel
/// entries can be skipped lazily.
struct Pool<A: DeltaAlgorithm> {
    pending: Vec<A::Delta>,
    active: Vec<bool>,
    enq_key: Vec<u64>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    processed: u64,
    generated: u64,
    coalesced: u64,
    stale: u64,
    reschedules: u64,
    overflows: u64,
}

impl Counters {
    fn add(&mut self, o: &Counters) {
        self.processed += o.processed;
        self.generated += o.generated;
        self.coalesced += o.coalesced;
        self.stale += o.stale;
        self.reschedules += o.reschedules;
        self.overflows += o.overflows;
    }
}

/// One vertex shard: its slice of the event pool, its own wheel, and a
/// sorted index of resident keys (so the global round key — the minimum
/// across shards — is O(1) to read).
/// Per-target-shard delta buffers: `outbox[s]` holds the `(vertex,
/// delta)` pairs a drain produced for shard `s`, in propagation order.
type Outbox<D> = Vec<Vec<(u32, D)>>;

struct Shard<A: DeltaAlgorithm> {
    /// First global vertex id this shard owns.
    start: u32,
    /// Number of vertices owned.
    len: usize,
    /// Global routing block size `B`: vertex `v` belongs to shard
    /// `v / B`. Identical on every shard.
    block: usize,
    pool: Pool<A>,
    wheel: HierarchicalWheel<u32>,
    /// Keys with at least one wheel entry (stale ones included); the
    /// minimum is the shard's candidate for the next global round.
    keys: std::collections::BTreeSet<u64>,
    identity: A::Delta,
    stats: Counters,
}

impl<A: DeltaAlgorithm> Shard<A> {
    fn new(algo: &A, cfg: &TurboConfig, start: u32, len: usize, block: usize) -> Self {
        let identity = algo.identity_delta();
        Shard {
            start,
            len,
            block,
            pool: Pool {
                pending: vec![identity; len],
                active: vec![false; len],
                enq_key: vec![0; len],
            },
            wheel: HierarchicalWheel::new(cfg.wheel_slots, cfg.wheel_levels),
            keys: std::collections::BTreeSet::new(),
            identity,
            stats: Counters::default(),
        }
    }

    /// Smallest key resident on this shard, if any.
    fn next_key(&self) -> Option<u64> {
        self.keys.iter().next().copied()
    }

    /// Deposits `delta` for the owned vertex `target`: coalesces into the
    /// pending slot and (re-)schedules the vertex in this shard's wheel
    /// keyed by its quantized urgency. The wheel has already been advanced
    /// to the current global round key, so the clamp window `[now,
    /// max_key]` is the same on every shard.
    fn deposit(&mut self, algo: &A, cfg: &TurboConfig, target: u32, delta: A::Delta) {
        self.stats.generated += 1;
        let t = (target - self.start) as usize;
        let merged = if self.pool.active[t] {
            self.stats.coalesced += 1;
            self.pool.pending[t] = algo.coalesce(self.pool.pending[t], delta);
            self.pool.pending[t]
        } else {
            self.pool.pending[t] = delta;
            delta
        };
        let raw = if cfg.prioritized {
            key_of(algo.urgency(merged))
        } else {
            0
        };
        // Clamp into the live window: keys in the past run now, keys beyond
        // the horizon are handed off to the outermost bucket (exact order
        // within the horizon, approximate beyond it — any order converges
        // per §II-B).
        if raw > self.wheel.max_key() {
            self.stats.overflows += 1;
        }
        let key = raw.clamp(self.wheel.now(), self.wheel.max_key());
        if !self.pool.active[t] {
            self.pool.active[t] = true;
        } else if key >= self.pool.enq_key[t] {
            // Already scheduled at least as urgently; the existing entry
            // stands.
            return;
        } else {
            // Move to the more urgent bucket; the old entry becomes stale
            // and is skipped on drain (lazy deletion).
            self.stats.reschedules += 1;
        }
        self.pool.enq_key[t] = key;
        let inserted = self.wheel.insert(key, target);
        debug_assert_eq!(inserted, Ok(key), "clamped key must fit the horizon");
        self.keys.insert(key);
    }

    /// Drains this shard's bucket for the global round key `key` (a no-op
    /// returning zeros if the shard has nothing resident at that key),
    /// applying deltas to the shard's `values` slice and buffering every
    /// propagated delta into `outbox[target_shard]` instead of depositing.
    /// Returns `(drained, processed)`.
    fn drain_round<G: GraphView>(
        &mut self,
        algo: &A,
        graph: &G,
        cfg: &TurboConfig,
        key: u64,
        values: &mut [A::Value],
        outbox: &mut [Vec<(u32, A::Delta)>],
    ) -> (u64, u64) {
        if self.next_key() != Some(key) {
            return (0, 0);
        }
        self.keys.remove(&key);
        let (drained_key, mut batch) = self
            .wheel
            .drain_next()
            .expect("key index said a bucket is resident");
        debug_assert_eq!(drained_key, key, "key index out of sync with wheel");
        if cfg.sort_buckets {
            batch.sort_unstable();
        }
        let drained = batch.len() as u64;
        let mut applied = 0u64;
        for raw_v in batch {
            let vi = (raw_v - self.start) as usize;
            if !self.pool.active[vi] || self.pool.enq_key[vi] != key {
                self.stats.stale += 1;
                continue;
            }
            self.pool.active[vi] = false;
            let delta = std::mem::replace(&mut self.pool.pending[vi], self.identity);
            self.stats.processed += 1;
            applied += 1;
            let u = VertexId::new(raw_v);
            let old = values[vi];
            let new = algo.reduce(old, delta);
            values[vi] = new;
            if let Some(basis) = algo.propagation_basis(old, new) {
                let degree = graph.out_degree(u);
                for i in 0..degree {
                    let edge = graph.out_edge(u, i);
                    if let Some(d) = algo.propagate(basis, u, degree, edge) {
                        outbox[edge.other.index() / self.block].push((edge.other.get(), d));
                    }
                }
            }
        }
        (drained, applied)
    }

    /// Applies one source shard's buffered deltas to this shard, in buffer
    /// order. Callers iterate source shards in ascending order, which makes
    /// the overall merge ascending in global source vertex.
    fn absorb(&mut self, algo: &A, cfg: &TurboConfig, entries: &[(u32, A::Delta)]) {
        for &(target, delta) in entries {
            self.deposit(algo, cfg, target, delta);
        }
    }
}

/// Flips the top `enq_key` bit of the `pick`-th active vertex across all
/// shards in global index order — the [`StaleFault`] upset.
fn inject_stale_fault<A: DeltaAlgorithm>(shards: &mut [Shard<A>], pick: u64) {
    let active_count: usize = shards
        .iter()
        .map(|s| s.pool.active.iter().filter(|&&a| a).count())
        .sum();
    if active_count == 0 {
        return;
    }
    let mut kth = (pick % active_count as u64) as usize;
    for shard in shards.iter_mut() {
        for (i, &a) in shard.pool.active.iter().enumerate() {
            if a {
                if kth == 0 {
                    shard.pool.enq_key[i] ^= 1 << 63;
                    return;
                }
                kth -= 1;
            }
        }
    }
    unreachable!("kth < active_count");
}

/// Sequential round driver: the reference implementation of the global
/// round protocol, also the only driver that supports fault injection.
fn drive_sequential<A: DeltaAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    cfg: &TurboConfig,
    shards: &mut [Shard<A>],
    slices: &mut [&mut [A::Value]],
) -> (u64, Vec<RoundStat>) {
    let s_count = shards.len();
    let mut outboxes: Vec<Outbox<A::Delta>> =
        (0..s_count).map(|_| vec![Vec::new(); s_count]).collect();
    let mut rounds = 0u64;
    let mut round_log = Vec::new();
    let mut fault_armed = cfg.fault.is_some();
    while let Some(k) = shards.iter().filter_map(Shard::next_key).min() {
        rounds += 1;
        let mut drained = 0u64;
        let mut processed = 0u64;
        for ((shard, slice), outbox) in shards
            .iter_mut()
            .zip(slices.iter_mut())
            .zip(outboxes.iter_mut())
        {
            shard.wheel.advance_to(k);
            for lane in outbox.iter_mut() {
                lane.clear();
            }
            let (d, p) = shard.drain_round(algo, graph, cfg, k, slice, outbox);
            drained += d;
            processed += p;
        }
        // Canonical merge: ascending source shard, buffer order within —
        // i.e. ascending global source vertex.
        for outbox in &outboxes {
            for (dst, entries) in outbox.iter().enumerate() {
                shards[dst].absorb(algo, cfg, entries);
            }
        }
        if cfg.record_rounds {
            round_log.push(RoundStat {
                key: k,
                drained,
                processed,
            });
        }
        if fault_armed {
            let f = cfg.fault.expect("fault_armed implies a fault plan");
            if rounds >= f.after_rounds {
                fault_armed = false;
                // SRAM upset in the enqueue-key column: flip the top bit
                // of one active vertex's tag. Real keys never have it set,
                // so the vertex's wheel entry now always reads as stale.
                inject_stale_fault(shards, f.pick);
            }
        }
    }
    (rounds, round_log)
}

/// Scoped-thread round driver: one worker per shard, three barriers per
/// round (key election → drain → merge). Executes the identical per-round
/// steps as [`drive_sequential`], in the identical order, so the two are
/// bit-equivalent — the per-round protocol is:
///
/// 1. publish own next key, barrier, read the global minimum `k` (every
///    worker computes the same minimum from the same published values);
/// 2. advance own wheel to `k`, drain own bucket into per-target-shard
///    outboxes (write lock on own outbox only), barrier;
/// 3. absorb lane `i` of every outbox in ascending source-shard order
///    (read locks), barrier, repeat.
fn drive_threaded<A: DeltaAlgorithm, G: GraphView + Sync>(
    algo: &A,
    graph: &G,
    cfg: &TurboConfig,
    shards: &mut [Shard<A>],
    slices: &mut [&mut [A::Value]],
) -> (u64, Vec<RoundStat>) {
    let s_count = shards.len();
    let barrier = Barrier::new(s_count);
    let next_keys: Vec<AtomicU64> = (0..s_count).map(|_| AtomicU64::new(u64::MAX)).collect();
    let outboxes: Vec<RwLock<Outbox<A::Delta>>> = (0..s_count)
        .map(|_| RwLock::new(vec![Vec::new(); s_count]))
        .collect();
    let mut worker_stats: Vec<(u64, Vec<RoundStat>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(s_count);
        for (i, (shard, slice)) in shards.iter_mut().zip(slices.iter_mut()).enumerate() {
            let barrier = &barrier;
            let next_keys = &next_keys;
            let outboxes = &outboxes;
            handles.push(scope.spawn(move || {
                let mut rounds = 0u64;
                let mut log = Vec::new();
                loop {
                    next_keys[i].store(shard.next_key().unwrap_or(u64::MAX), Ordering::Relaxed);
                    barrier.wait();
                    // Between this barrier and the merge barrier no worker
                    // writes next_keys, so every worker reads the same
                    // minimum (the barrier orders the stores before the
                    // loads).
                    let k = next_keys
                        .iter()
                        .map(|a| a.load(Ordering::Relaxed))
                        .min()
                        .expect("at least one shard");
                    if k == u64::MAX {
                        break;
                    }
                    rounds += 1;
                    shard.wheel.advance_to(k);
                    let (drained, processed) = {
                        let mut outbox = outboxes[i].write().expect("turbo outbox lock poisoned");
                        for lane in outbox.iter_mut() {
                            lane.clear();
                        }
                        shard.drain_round(algo, graph, cfg, k, slice, &mut outbox)
                    };
                    barrier.wait();
                    for src in outboxes {
                        let src = src.read().expect("turbo outbox lock poisoned");
                        shard.absorb(algo, cfg, &src[i]);
                    }
                    if cfg.record_rounds {
                        log.push(RoundStat {
                            key: k,
                            drained,
                            processed,
                        });
                    }
                    barrier.wait();
                }
                (rounds, log)
            }));
        }
        for handle in handles {
            worker_stats.push(handle.join().expect("turbo shard worker panicked"));
        }
    });
    // Every worker ran the same number of global rounds; the per-round log
    // entries sum each worker's contribution to the round's bucket.
    let rounds = worker_stats.first().map_or(0, |(r, _)| *r);
    debug_assert!(worker_stats.iter().all(|(r, _)| *r == rounds));
    let mut round_log = worker_stats.pop().map_or_else(Vec::new, |(_, log)| log);
    for (_, log) in &worker_stats {
        debug_assert_eq!(log.len(), round_log.len());
        for (merged, part) in round_log.iter_mut().zip(log) {
            debug_assert_eq!(merged.key, part.key);
            merged.drained += part.drained;
            merged.processed += part.processed;
        }
    }
    (rounds, round_log)
}

/// Runs `algo` on `graph` with the turbo executor.
///
/// Semantically equivalent to
/// [`run_sequential`](gp_algorithms::engine::run_sequential) — same
/// coalescing invariant, same local-termination rule — but processes
/// events in delta-magnitude priority order (§V) from a hierarchical
/// timing wheel, and walks each drained bucket in vertex-id order for
/// cache-friendly CSR access. Deterministic: identical inputs give
/// bit-identical values, counters, and round logs, for **any**
/// [`TurboConfig::shards`] count (see the module docs for the argument).
///
/// # Panics
///
/// Panics if `cfg.wheel_slots < 2`, `cfg.wheel_levels == 0`, or the
/// horizon `slots^levels` overflows `u64`.
pub fn run_turbo<A: DeltaAlgorithm, G: GraphView + Sync>(
    algo: &A,
    graph: &G,
    cfg: &TurboConfig,
) -> TurboOutcome {
    let (mut values, seeds) = gp_algorithms::engine::initial_state(algo, graph);
    run_turbo_seeded(algo, graph, &mut values, &seeds, cfg)
}

/// Runs `algo` on `graph` from explicit warm-start state: `values` holds
/// the starting vertex states (updated in place, typed — read them back
/// for exact results), `seeds` the initial events. The turbo analogue of
/// [`run_sequential_seeded`](gp_algorithms::engine::run_sequential_seeded):
/// a cold [`run_turbo`] is the special case of
/// [`initial_state`](gp_algorithms::engine::initial_state) values plus the
/// `initial_delta` seed set. Duplicate seeds for one vertex coalesce in
/// seed order, exactly as cascaded deposits would.
///
/// The incremental engine uses this to re-converge through turbo instead
/// of the golden engine: converged values from the previous fixed point
/// plus a [`SeedPlan`](gp_algorithms::incremental::incremental_seeds)
/// computed against the mutated topology.
///
/// # Panics
///
/// Panics if `values.len() != graph.num_vertices()`, a seed vertex is out
/// of range, `cfg.wheel_slots < 2`, `cfg.wheel_levels == 0`, or the
/// horizon `slots^levels` overflows `u64`.
pub fn run_turbo_seeded<A: DeltaAlgorithm, G: GraphView + Sync>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    seeds: &[(VertexId, A::Delta)],
    cfg: &TurboConfig,
) -> TurboOutcome {
    let n = graph.num_vertices();
    assert_eq!(values.len(), n, "state length must match the vertex count");
    for &(v, _) in seeds {
        assert!(v.index() < n, "seed vertex {v:?} out of range");
    }

    let s_count = cfg.shards.max(1).min(n.max(1));
    let block = n.div_ceil(s_count).max(1);
    let mut shards: Vec<Shard<A>> = (0..s_count)
        .map(|i| {
            let start = i * block;
            let end = ((i + 1) * block).min(n);
            Shard::new(algo, cfg, start as u32, end.saturating_sub(start), block)
        })
        .collect();

    // Seed deposits in seed order, exactly as the single-shard engine
    // would: every wheel still sits at key 0, the global floor.
    for &(v, d) in seeds {
        shards[v.index() / block].deposit(algo, cfg, v.get(), d);
    }

    let (rounds, round_log) = {
        let mut slices: Vec<&mut [A::Value]> = Vec::with_capacity(s_count);
        let mut rest: &mut [A::Value] = values;
        for shard in &shards {
            let (head, tail) = rest.split_at_mut(shard.len);
            slices.push(head);
            rest = tail;
        }
        if s_count > 1 && cfg.fault.is_none() {
            drive_threaded(algo, graph, cfg, &mut shards, &mut slices)
        } else {
            drive_sequential(algo, graph, cfg, &mut shards, &mut slices)
        }
    };

    let mut stats = Counters::default();
    for shard in &shards {
        stats.add(&shard.stats);
    }
    let orphaned: Vec<u32> = shards
        .iter()
        .flat_map(|s| {
            s.pool
                .active
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(i, _)| s.start + i as u32)
        })
        .collect();

    TurboOutcome {
        values: values.iter().map(|&v| algo.value_to_f64(v)).collect(),
        events_processed: stats.processed,
        events_generated: stats.generated,
        events_coalesced: stats.coalesced,
        stale_entries: stats.stale,
        reschedules: stats.reschedules,
        overflow_handoffs: stats.overflows,
        rounds,
        orphaned,
        round_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::engine::run_sequential;
    use gp_algorithms::{
        Adsorption, AdsorptionParams, Bfs, ConnectedComponents, PageRankDelta, Sssp, Sswp,
    };
    use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};
    use gp_graph::GraphBuilder;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        gp_algorithms::max_abs_diff(a, b)
    }

    #[test]
    fn matches_golden_on_pagerank() {
        let g = rmat(&RmatConfig::graph500(512, 4_096), 11);
        let pr = PageRankDelta::new(0.85, 1e-9);
        let turbo = run_turbo(&pr, &g, &TurboConfig::default());
        let golden = run_sequential(&pr, &g);
        assert!(max_abs_diff(&turbo.values, &golden.values) < 1e-5);
        assert!(turbo.events_processed > 0);
    }

    #[test]
    fn matches_golden_exactly_on_monotone_algorithms() {
        let g = erdos_renyi(400, 2_400, WeightMode::Uniform(1.0, 8.0), 5);
        let root = VertexId::new(0);
        let cfg = TurboConfig::default();

        let t = run_turbo(&Sssp::new(root), &g, &cfg);
        let s = run_sequential(&Sssp::new(root), &g);
        assert_eq!(t.values, s.values, "sssp must be bit-exact");

        let t = run_turbo(&Bfs::new(root), &g, &cfg);
        let s = run_sequential(&Bfs::new(root), &g);
        assert_eq!(t.values, s.values, "bfs must be bit-exact");

        let t = run_turbo(&ConnectedComponents::new(), &g, &cfg);
        let s = run_sequential(&ConnectedComponents::new(), &g);
        assert_eq!(t.values, s.values, "cc must be bit-exact");

        let t = run_turbo(&Sswp::new(root), &g, &cfg);
        let s = run_sequential(&Sswp::new(root), &g);
        assert_eq!(t.values, s.values, "sswp must be bit-exact");
    }

    #[test]
    fn adsorption_within_tolerance_of_golden() {
        use gp_algorithms::normalize_inbound;
        let g = normalize_inbound(&erdos_renyi(200, 1_600, WeightMode::Uniform(0.5, 2.0), 7));
        let ads = Adsorption::new(AdsorptionParams::random(200, 7), 1e-9);
        let turbo = run_turbo(&ads, &g, &TurboConfig::default());
        let golden = run_sequential(&ads, &g);
        assert!(max_abs_diff(&turbo.values, &golden.values) < ads.comparison_tolerance());
    }

    #[test]
    fn seeded_cold_start_reproduces_run_turbo() {
        use gp_algorithms::engine::initial_state;
        let g = rmat(&RmatConfig::graph500(256, 2_048), 9);
        let algo = Sssp::new(VertexId::new(0));
        let cold = run_turbo(&algo, &g, &TurboConfig::default());
        let (mut values, seeds) = initial_state(&algo, &g);
        let seeded = run_turbo_seeded(&algo, &g, &mut values, &seeds, &TurboConfig::default());
        assert_eq!(cold.values, seeded.values);
        assert_eq!(cold.events_processed, seeded.events_processed);
        // Typed state in the caller's slice matches the f64 projection.
        let typed: Vec<f64> = values.iter().map(|&v| algo.value_to_f64(v)).collect();
        assert_eq!(typed, seeded.values);
    }

    #[test]
    fn two_runs_are_bit_identical() {
        let g = rmat(&RmatConfig::graph500(256, 2_048), 3);
        let pr = PageRankDelta::new(0.85, 1e-7);
        let cfg = TurboConfig {
            record_rounds: true,
            ..TurboConfig::default()
        };
        let a = run_turbo(&pr, &g, &cfg);
        let b = run_turbo(&pr, &g, &cfg);
        let bits = |o: &TurboOutcome| o.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(a.render_log(), b.render_log());
    }

    #[test]
    fn sharded_runs_are_bit_identical_to_single_shard() {
        let g = rmat(&RmatConfig::graph500(256, 2_048), 21);
        let pr = PageRankDelta::new(0.85, 1e-7);
        let base = run_turbo(
            &pr,
            &g,
            &TurboConfig {
                record_rounds: true,
                ..TurboConfig::default()
            },
        );
        for shards in [2, 3, 4, 7] {
            let out = run_turbo(
                &pr,
                &g,
                &TurboConfig {
                    shards,
                    record_rounds: true,
                    ..TurboConfig::default()
                },
            );
            assert_eq!(
                out.render_log(),
                base.render_log(),
                "{shards} shards: log diverged"
            );
            let bits = |o: &TurboOutcome| o.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&base), "{shards} shards: values diverged");
        }
    }

    #[test]
    fn shards_beyond_vertex_count_are_clamped() {
        let g = erdos_renyi(3, 6, WeightMode::Unweighted, 1);
        let cfg = TurboConfig {
            shards: 64,
            ..TurboConfig::default()
        };
        let out = run_turbo(&ConnectedComponents::new(), &g, &cfg);
        let base = run_turbo(&ConnectedComponents::new(), &g, &TurboConfig::default());
        assert_eq!(out.values, base.values);
    }

    #[test]
    fn prioritization_and_sorting_can_be_disabled() {
        let g = erdos_renyi(128, 1_024, WeightMode::Unweighted, 9);
        let pr = PageRankDelta::new(0.85, 1e-8);
        let golden = run_sequential(&pr, &g);
        for cfg in [
            TurboConfig {
                prioritized: false,
                ..TurboConfig::default()
            },
            TurboConfig {
                sort_buckets: false,
                ..TurboConfig::default()
            },
            TurboConfig {
                wheel_slots: 8,
                wheel_levels: 2, // horizon 64 < key space: exercises handoff
                ..TurboConfig::default()
            },
        ] {
            let t = run_turbo(&pr, &g, &cfg);
            assert!(
                max_abs_diff(&t.values, &golden.values) < 1e-4,
                "config {cfg:?} diverged"
            );
        }
    }

    #[test]
    fn small_horizon_counts_overflow_handoffs() {
        let g = erdos_renyi(64, 512, WeightMode::Uniform(1.0, 4.0), 2);
        let cfg = TurboConfig {
            wheel_slots: 2,
            wheel_levels: 2, // horizon 4: nearly every key class overflows
            ..TurboConfig::default()
        };
        let t = run_turbo(&Sssp::new(VertexId::new(0)), &g, &cfg);
        let s = run_sequential(&Sssp::new(VertexId::new(0)), &g);
        assert_eq!(t.values, s.values);
        assert!(t.overflow_handoffs > 0);
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = GraphBuilder::new(0).build();
        let out = run_turbo(&PageRankDelta::new(0.85, 1e-4), &g, &TurboConfig::default());
        assert!(out.values.is_empty());
        assert_eq!(out.events_processed, 0);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn counters_are_consistent() {
        let g = rmat(&RmatConfig::graph500(256, 2_048), 17);
        let pr = PageRankDelta::new(0.85, 1e-7);
        let cfg = TurboConfig {
            record_rounds: true,
            ..TurboConfig::default()
        };
        let out = run_turbo(&pr, &g, &cfg);
        // Every generated event is either coalesced away or eventually
        // processed; nothing is lost.
        assert_eq!(
            out.events_generated,
            out.events_coalesced + out.events_processed
        );
        assert!(out.orphaned.is_empty());
        out.check_lost_events().unwrap();
        let log_processed: u64 = out.round_log.iter().map(|r| r.processed).sum();
        let log_drained: u64 = out.round_log.iter().map(|r| r.drained).sum();
        assert_eq!(log_processed, out.events_processed);
        assert_eq!(log_drained, out.events_processed + out.stale_entries);
        assert_eq!(out.round_log.len() as u64, out.rounds);
        assert!(out.coalesce_rate() > 0.0 && out.coalesce_rate() < 1.0);
    }

    #[test]
    fn stale_fault_never_corrupts_silently() {
        // A stale-tag upset either self-heals (a later deposit to the
        // victim re-schedules it, losing nothing) or drops a delta, which
        // the lost-event check must catch. Sweep pick values so both
        // branches are exercised; no configuration may produce wrong
        // values *and* a clean check.
        let g = erdos_renyi(96, 380, WeightMode::Uniform(1.0, 6.0), 13);
        let algo = Sssp::new(VertexId::new(0));
        let golden = run_sequential(&algo, &g);
        let clean_rounds = run_turbo(&algo, &g, &TurboConfig::default()).rounds;
        assert!(clean_rounds > 4);
        let mut detected = 0;
        let mut healed = 0;
        let mut trials = 0;
        // Corrupt early (heals: plenty of later deposits overwrite the
        // tag) and late (orphans: the victim's entry is simply skipped).
        for after_rounds in [2, clean_rounds / 2, clean_rounds - 2] {
            for pick in 0..6u64 {
                trials += 1;
                let cfg = TurboConfig {
                    fault: Some(StaleFault { after_rounds, pick }),
                    ..TurboConfig::default()
                };
                let out = run_turbo(&algo, &g, &cfg);
                match out.check_lost_events() {
                    Err(msg) => {
                        detected += 1;
                        assert!(msg.contains("lost"), "{msg}");
                        assert!(msg.contains("conservation violated"), "{msg}");
                        assert_eq!(
                            out.events_generated,
                            out.events_coalesced + out.events_processed + out.orphaned.len() as u64
                        );
                    }
                    Ok(()) => {
                        healed += 1;
                        assert_eq!(out.values, golden.values, "healed run must be exact");
                    }
                }
            }
        }
        assert!(detected > 0, "no trial orphaned a delta");
        assert_eq!(detected + healed, trials);
    }

    #[test]
    fn stale_fault_is_deterministic() {
        let g = rmat(&RmatConfig::graph500(128, 1_024), 5);
        let cfg = TurboConfig {
            record_rounds: true,
            fault: Some(StaleFault {
                after_rounds: 1,
                pick: 3,
            }),
            ..TurboConfig::default()
        };
        let algo = Sssp::new(VertexId::new(0));
        let a = run_turbo(&algo, &g, &cfg);
        let b = run_turbo(&algo, &g, &cfg);
        assert_eq!(a.orphaned, b.orphaned);
        assert_eq!(a.render_log(), b.render_log());
    }
}
