//! # gp-turbo — the speed-first functional backend
//!
//! A fifth execution backend for [`DeltaAlgorithm`](gp_algorithms::DeltaAlgorithm)s
//! that keeps GraphPulse's semantics — in-place event coalescing into a
//! dense per-vertex slot array, asynchronous delta accumulation — but drops
//! cycle accounting entirely. Where the cycle-level model in
//! `graphpulse-core` pays for micro-architectural fidelity on every event
//! (queues, pipelines, DRAM timing), this backend asks the complementary
//! question: *how fast does the paper's execution model run as software?*
//!
//! Three mechanisms carry the throughput:
//!
//! * **SoA event pool** — pending deltas live in flat `Vec`s indexed by
//!   vertex id (delta, active flag, scheduled key), not per-event structs;
//!   coalescing is a single indexed read-modify-write, exactly like the
//!   accelerator's in-place coalescing queue but without the bin/row/slot
//!   geometry.
//! * **Delta-magnitude-prioritized draining** — active vertices are
//!   scheduled into a [`HierarchicalWheel`](gp_sim::HierarchicalWheel)
//!   keyed by the quantized [`urgency`](gp_algorithms::DeltaAlgorithm::urgency)
//!   of their pending delta, so big deltas drain first (§V of the paper:
//!   large deltas compound more work per event and converge faster). The
//!   §II-B reordering property guarantees any drain order reaches the same
//!   fixed point, which is what licenses the approximation.
//! * **Cache-blocked kernels** — each drained priority bucket is sorted by
//!   vertex id before processing, so the kernel walks monotone CSR ranges
//!   (row pointers, edge lists, and the value/pending arrays stream
//!   forward) instead of hopping with the priority order.
//!
//! The backend is bit-deterministic: two runs on the same graph produce
//! identical values, counters, and (optional) round logs. It is registered
//! as the **fifth oracle leg** in `gp-verify`, so every fuzz case
//! cross-checks it against the golden engine, the cycle-level accelerator,
//! the shard-parallel engine, and the incremental engine — speed never
//! forks semantics.
//!
//! # Examples
//!
//! ```
//! use gp_algorithms::PageRankDelta;
//! use gp_graph::generators::{rmat, RmatConfig};
//! use gp_turbo::{run_turbo, TurboConfig};
//!
//! let g = rmat(&RmatConfig::graph500(1_024, 8_192), 42);
//! let out = run_turbo(&PageRankDelta::new(0.85, 1e-7), &g, &TurboConfig::default());
//! assert_eq!(out.values.len(), 1_024);
//! assert!(out.events_coalesced > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod priority;

pub use engine::{run_turbo, run_turbo_seeded, RoundStat, StaleFault, TurboConfig, TurboOutcome};
