//! Urgency → wheel-key quantization.
//!
//! The turbo engine schedules active vertices into a
//! [`HierarchicalWheel`](gp_sim::HierarchicalWheel) whose keys drain in
//! ascending order, while [`urgency`](gp_algorithms::DeltaAlgorithm::urgency)
//! says *larger is more urgent*. This module maps an `f64` urgency onto a
//! small integer key space, **monotonically decreasing**: the most urgent
//! deltas land in the lowest buckets and drain first.
//!
//! The mapping uses the IEEE-754 total-order trick: flipping all bits of
//! negative floats and setting the sign bit of non-negative ones turns the
//! raw bit pattern into an unsigned integer whose order matches the float
//! order (−∞ < … < −0.0 < +0.0 < … < +∞). Complementing and keeping the
//! top [`KEY_BITS`] bits then yields a coarse, order-reversed bucket index
//! in `0..KEY_SPACE`. Quantization only merges *adjacent* urgencies into
//! one bucket — it never reorders two distinct ones — so the schedule is a
//! faithful (if coarse) §V priority order.

/// Number of key bits kept after quantization (the urgency's sign and
/// full 11-bit exponent).
pub const KEY_BITS: u32 = 12;

/// Size of the quantized key space: keys are in `0..KEY_SPACE`.
pub const KEY_SPACE: u64 = 1 << KEY_BITS;

/// Quantizes an urgency into a wheel key in `0..KEY_SPACE`.
///
/// Strictly monotone *decreasing* over the IEEE total order: a larger
/// urgency never maps to a larger key. `urgency` must not be NaN (the
/// [`DeltaAlgorithm::urgency`](gp_algorithms::DeltaAlgorithm::urgency)
/// contract); NaN would quantize like an extreme value rather than poison
/// the schedule, but the resulting order is unspecified.
///
/// # Examples
///
/// ```
/// use gp_turbo::priority::{key_of, KEY_SPACE};
///
/// assert!(key_of(f64::INFINITY) < key_of(1.0));
/// assert!(key_of(1.0) < key_of(1e-9));
/// assert!(key_of(1e-9) < key_of(-3.0));
/// assert!(key_of(f64::NEG_INFINITY) < KEY_SPACE);
/// ```
#[inline]
#[must_use]
pub fn key_of(urgency: f64) -> u64 {
    let bits = urgency.to_bits();
    // IEEE-754 total order as an unsigned integer.
    let ordered = if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    };
    (!ordered) >> (64 - KEY_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_inside_the_key_space() {
        for u in [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            f64::MAX,
            f64::INFINITY,
        ] {
            assert!(key_of(u) < KEY_SPACE, "key_of({u}) out of range");
        }
    }

    #[test]
    fn mapping_is_monotone_decreasing() {
        let ladder = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            0.0,
            1e-300,
            0.5,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for pair in ladder.windows(2) {
            assert!(
                key_of(pair[0]) >= key_of(pair[1]),
                "key_of({}) < key_of({})",
                pair[0],
                pair[1]
            );
        }
        // The extremes must be strictly separated.
        assert!(key_of(f64::NEG_INFINITY) > key_of(f64::INFINITY));
        assert!(key_of(1.0) > key_of(2.0));
    }

    #[test]
    fn most_urgent_lands_in_bucket_zero() {
        assert_eq!(key_of(f64::INFINITY), 0);
    }

    #[test]
    fn quantization_merges_only_neighbors() {
        // Sorting by key must never invert the urgency order on a dense
        // sample of magnitudes.
        let mut urgencies: Vec<f64> = (-60..60).map(|e| 2.0f64.powi(e)).collect();
        urgencies.extend((-60..60).map(|e| -(2.0f64.powi(e))));
        urgencies.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let keys: Vec<u64> = urgencies.iter().map(|&u| key_of(u)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "descending urgency must give ascending keys");
    }
}
