//! Asynchronous vs bulk-synchronous execution — the paper's core thesis
//! (§II-B, Table I): delta-accumulative algorithms break the iteration
//! abstraction, and coalescing lets one event compound many iterations of
//! work ("lookahead", Fig. 7/8).
//!
//! Runs Connected Components on the same web graph through three engines:
//! the asynchronous GraphPulse accelerator, the BSP Graphicionado model,
//! and the synchronous golden engine — then compares rounds, work, and
//! simulated time.
//!
//! ```text
//! cargo run --release --example async_vs_bsp
//! ```

use graphpulse::algorithms::{engine, ConnectedComponents};
use graphpulse::baselines::graphicionado::{self, GraphicionadoConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::workloads::Workload;

fn main() {
    let graph = Workload::WebGoogle.synthesize(512, 11);
    println!("web graph: {graph}");
    let algo = ConnectedComponents::new();

    // --- asynchronous: GraphPulse ---
    let mut config = AcceleratorConfig::optimized();
    config.queue = QueueConfig {
        bins: 16,
        rows: 256,
        cols: 8,
    };
    let gp = GraphPulse::new(config).run(&graph, &algo).expect("gp run");

    // --- bulk-synchronous: Graphicionado model ---
    let bsp = graphicionado::run(&graph, &algo, &GraphicionadoConfig::default());

    // --- synchronous software golden engine (for round counting) ---
    let (golden, rounds_log) = engine::run_bsp(&algo, &graph, 100_000);

    assert!(graphpulse::algorithms::max_abs_diff(&gp.values, &bsp.values) < 1e-9);
    assert!(graphpulse::algorithms::max_abs_diff(&gp.values, &golden.values) < 1e-9);
    println!("all three engines agree on the component labels ✓");

    println!("\n                      async GraphPulse | BSP Graphicionado");
    println!(
        "rounds/iterations:    {:>16} | {:>17}",
        gp.report.rounds, bsp.iterations
    );
    println!(
        "events/edge work:     {:>16} | {:>17}",
        gp.report.events_processed, bsp.edges_processed
    );
    println!(
        "simulated time:       {:>13.3} ms | {:>14.3} ms",
        gp.report.seconds * 1e3,
        bsp.seconds * 1e3
    );

    let lookahead = gp.report.total_lookahead();
    let compounding = lookahead.total() - lookahead.zero;
    println!(
        "\nlookahead: {} of {} processed events compounded work across iterations",
        compounding,
        lookahead.total()
    );
    println!(
        "BSP executed {} synchronous iterations ({} total edge visits); the \
         asynchronous queue applied only {} vertex updates to reach the same \
         fixpoint — coalesced events fold several iterations' deltas into one.",
        rounds_log.len(),
        bsp.edges_processed,
        gp.report.events_processed
    );
}
