//! Social-network influence analysis — the workload class that motivates
//! the paper's introduction (social network analytics over power-law
//! graphs).
//!
//! Builds a Facebook-profile synthetic social network, then:
//! 1. ranks users with PageRank-Delta on the accelerator,
//! 2. diffuses interest labels from seed users with Adsorption,
//! 3. cross-checks both against the software (Ligra-style) framework,
//!    comparing simulated accelerator time against measured software time.
//!
//! ```text
//! cargo run --release --example social_influence
//! ```

use graphpulse::algorithms::{Adsorption, AdsorptionParams, PageRankDelta};
use graphpulse::baselines::ligra::{apps, LigraConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::generators::WeightMode;
use graphpulse::graph::workloads::Workload;

fn main() {
    // A 1/1024-scale Facebook-like social network (symmetric friendships).
    let network = Workload::Facebook.synthesize(1024, 7);
    println!("social network: {network}");

    let mut config = AcceleratorConfig::optimized();
    config.queue = QueueConfig {
        bins: 16,
        rows: 256,
        cols: 8,
    };
    let accel = GraphPulse::new(config);

    // --- 1. Influence ranking (PageRank-Delta) ---
    let pr = PageRankDelta::new(0.85, 1e-7);
    let ranked = accel.run(&network, &pr).expect("pagerank run");
    println!(
        "\ninfluence ranking: {:.3} ms simulated on the accelerator ({} rounds)",
        ranked.report.seconds * 1e3,
        ranked.report.rounds
    );

    // --- 2. Interest diffusion (Adsorption) ---
    // Random edge affinities, inbound-normalized as in the paper (§VI-A).
    let weighted = Workload::Facebook.synthesize_weighted(1024, WeightMode::Uniform(0.5, 2.0), 7);
    let normalized = graphpulse::algorithms::normalize_inbound(&weighted);
    let params = AdsorptionParams::random(normalized.num_vertices(), 99);
    let ads = Adsorption::new(params.clone(), 1e-7);
    let labels = accel.run(&normalized, &ads).expect("adsorption run");
    println!(
        "interest diffusion: {:.3} ms simulated, {:.1}% of events coalesced away",
        labels.report.seconds * 1e3,
        100.0 * labels.report.coalesce_rate()
    );

    // --- 3. Software comparison ---
    let sw_cfg = LigraConfig::default();
    let sw_pr = apps::pagerank_delta(&network, 0.85, 1e-7, &sw_cfg);
    let sw_ads = apps::adsorption(&normalized, &params, 1e-7, &sw_cfg);
    assert!(graphpulse::algorithms::max_abs_diff(&ranked.values, &sw_pr.values) < 1e-3);
    assert!(graphpulse::algorithms::max_abs_diff(&labels.values, &sw_ads.values) < 1e-3);
    println!(
        "\nsoftware framework ({} threads): pagerank {:.1} ms, adsorption {:.1} ms",
        sw_cfg.threads,
        sw_pr.elapsed.as_secs_f64() * 1e3,
        sw_ads.elapsed.as_secs_f64() * 1e3
    );
    println!(
        "accelerator speedup: pagerank {:.1}x, adsorption {:.1}x",
        sw_pr.elapsed.as_secs_f64() / ranked.report.seconds,
        sw_ads.elapsed.as_secs_f64() / labels.report.seconds
    );

    // --- most influential users carry the most label mass? ---
    let mut top: Vec<usize> = (0..network.num_vertices()).collect();
    top.sort_by(|a, b| ranked.values[*b].total_cmp(&ranked.values[*a]));
    println!("\ntop influencers (rank, diffused label mass):");
    for &v in top.iter().take(5) {
        println!(
            "  v{v}: rank {:.4}, label {:.4}",
            ranked.values[v], labels.values[v]
        );
    }
}
