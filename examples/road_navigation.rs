//! Road-network navigation: SSSP and BFS on a weighted 2-D grid — the
//! high-diameter, low-degree opposite of the power-law social graphs, and
//! the regime where asynchronous processing shines against BSP barriers.
//!
//! Also demonstrates **graph slicing** (§IV-F): the queue is deliberately
//! sized smaller than the map so the accelerator must partition it into
//! slices and spill inter-slice events off-chip.
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use graphpulse::algorithms::{reference, Bfs, Sssp};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::generators::{grid_2d, WeightMode};
use graphpulse::graph::VertexId;

fn main() {
    // A 96×96 road grid with travel-time weights.
    let map = grid_2d(96, 96, WeightMode::Uniform(1.0, 5.0), 3);
    let depot = VertexId::new(0);
    println!("road map: {map}");

    // Queue holds only 4096 intersections -> the 9216-vertex map needs
    // slicing (this is the §IV-F path).
    let mut config = AcceleratorConfig::optimized();
    config.queue = QueueConfig {
        bins: 8,
        rows: 64,
        cols: 8,
    }; // 4096 slots
    let accel = GraphPulse::new(config);

    // --- shortest travel times from the depot ---
    let sssp = accel.run(&map, &Sssp::new(depot)).expect("sssp run");
    println!(
        "\nSSSP: {} cycles over {} slices ({} activations), {} events spilled off-chip",
        sssp.report.cycles,
        sssp.report.slices,
        sssp.report.slice_activations,
        sssp.report.events_spilled
    );
    let golden = reference::sssp_dijkstra(&map, depot);
    assert!(graphpulse::algorithms::max_abs_diff(&sssp.values, &golden) < 1e-6);
    println!("validated against Dijkstra ✓");

    // --- hop distance (BFS) for a zone map ---
    let bfs = accel.run(&map, &Bfs::new(depot)).expect("bfs run");
    let golden_bfs = reference::bfs_levels(&map, depot);
    assert!(graphpulse::algorithms::max_abs_diff(&bfs.values, &golden_bfs) < 1e-9);
    let max_hops = bfs.values.iter().copied().fold(0.0f64, f64::max);
    println!(
        "BFS: diameter from depot = {max_hops} hops, {} rounds on the accelerator",
        bfs.report.rounds
    );

    // Farthest reachable corner by travel time.
    let (far, time) = sssp
        .values
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_finite())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("some vertex is reachable");
    println!(
        "farthest intersection: v{far} at {time:.1} travel-time units ({}, {})",
        far / 96,
        far % 96
    );
}
