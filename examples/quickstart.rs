//! Quickstart: run PageRank-Delta on the GraphPulse accelerator model and
//! check it against the classic power-iteration reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphpulse::algorithms::{reference, PageRankDelta};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::generators::{rmat, RmatConfig};

fn main() {
    // 1. A small power-law graph (Graph500-style R-MAT), seeded and
    //    deterministic.
    let graph = rmat(&RmatConfig::graph500(4_096, 32_768), 42);
    println!("graph: {graph}");

    // 2. The paper's optimized accelerator: 8 processors × 4 generation
    //    streams at 1 GHz, coalescing event queue, vertex prefetcher,
    //    4 × DDR3-17 GB/s. We shrink the queue so the example stays snappy.
    let mut config = AcceleratorConfig::optimized();
    config.queue = QueueConfig {
        bins: 16,
        rows: 64,
        cols: 8,
    };
    let accel = GraphPulse::new(config);

    // 3. Run PageRank-Delta (Table II row 1) to convergence.
    let algo = PageRankDelta::new(0.85, 1e-7);
    let outcome = accel.run(&graph, &algo).expect("simulation failed");
    let report = &outcome.report;

    println!(
        "finished in {} cycles ({:.3} ms at 1 GHz), {} rounds",
        report.cycles,
        report.seconds * 1e3,
        report.rounds
    );
    println!(
        "events: {} generated, {} processed, {} coalesced away ({:.1}% eliminated)",
        report.events_generated,
        report.events_processed,
        report.events_coalesced,
        100.0 * report.coalesce_rate()
    );
    println!(
        "off-chip: {} accesses, {:.1} MB moved, {:.0}% of bytes utilized",
        report.memory.total_accesses(),
        report.memory.total_bytes() as f64 / 1e6,
        100.0 * report.memory.utilization()
    );

    // 4. Validate against the golden reference.
    let golden = reference::pagerank(&graph, 0.85, 1e-10);
    let diff = graphpulse::algorithms::max_abs_diff(&outcome.values, &golden);
    println!("max deviation from power iteration: {diff:.2e}");
    assert!(diff < 1e-3, "accelerator diverged from the reference");

    // 5. Top-5 ranked vertices.
    let mut ranked: Vec<(usize, f64)> = outcome.values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 vertices by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!("  v{v}: {r:.4}");
    }
}
